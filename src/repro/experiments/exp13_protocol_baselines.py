"""EXP-13 — protocol baselines vs the paper's protocol-free models.

Reproduces the positioning of §2 (related work): protocols that actively
maintain topology (central cache [23], random-walk tokens [8]) achieve
full connectivity and fast flooding at the same small ``d`` where the
protocol-free SDG leaves isolated nodes — while SDGR (the paper's
regeneration rule) matches them with a far simpler, fully local mechanism.
"""

from __future__ import annotations

import math

from repro.analysis.components import component_summary
from repro.experiments.common import ExperimentResult, Stopwatch
from repro.experiments.registry import register
from repro.scenario import ScenarioSpec, simulate
from repro.util.rng import derive_seeds
from repro.util.stats import mean_confidence_interval

COLUMNS = [
    "network",
    "n",
    "d",
    "connected_rate",
    "giant_fraction",
    "flood_completion_mean",
    "flood_over_log2_n",
]


@register(
    "EXP-13",
    "Protocol baselines (central cache, random-walk tokens) vs SDG/SDGR",
    "§2 related work: Pandurangan et al. [23], Cooper et al. [8]",
)
def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    if quick:
        n, d, trials = 250, 4, 3
    else:
        n, d, trials = 1000, 4, 5

    base = ScenarioSpec(
        n=n,
        d=d,
        horizon=n,
        protocol="discrete",
        protocol_params={"max_rounds": 30 * int(math.log2(n))},
    )
    scenarios = {
        "SDG (paper, no regen)": base.with_(churn="streaming", policy="none"),
        "SDGR (paper, regen)": base.with_(churn="streaming", policy="regen"),
        "central cache [23]": base.with_(churn="central_cache", policy="none"),
        "random-walk tokens [8]": base.with_(churn="tokens", policy="none"),
    }

    rows: list[dict] = []
    with Stopwatch() as watch:
        for name, spec in scenarios.items():
            connected_flags, giants, completions = [], [], []
            for child in derive_seeds(seed, "exp13-protocols", trials):
                sim = simulate(spec, seed=child)
                summary = component_summary(sim.snapshot())
                connected_flags.append(summary.is_connected)
                giants.append(summary.giant_fraction)
                res = sim.flood()
                completions.append(
                    res.completion_round
                    if res.completed and res.completion_round is not None
                    else float("nan")
                )
            finite = [c for c in completions if c == c]
            mean_completion = (
                mean_confidence_interval(finite).mean if finite else float("nan")
            )
            rows.append(
                {
                    "network": name,
                    "n": n,
                    "d": d,
                    "connected_rate": sum(connected_flags) / len(connected_flags),
                    "giant_fraction": mean_confidence_interval(giants).mean,
                    "flood_completion_mean": mean_completion,
                    "flood_over_log2_n": mean_completion / math.log2(n),
                }
            )

    by_name = {r["network"]: r for r in rows}
    return ExperimentResult(
        experiment_id="EXP-13",
        title="Protocol baselines vs the paper's models",
        paper_reference="§2: [23] central cache, [8] random-walk tokens",
        columns=COLUMNS,
        rows=rows,
        verdict={
            "sdg_disconnected_at_d4": by_name["SDG (paper, no regen)"][
                "connected_rate"
            ]
            < 1.0,
            "sdgr_fully_connected": by_name["SDGR (paper, regen)"][
                "connected_rate"
            ]
            == 1.0,
            "cache_fully_connected": by_name["central cache [23]"][
                "connected_rate"
            ]
            == 1.0,
            # The simplified token protocol can starve a node of tokens
            # (1-2 stragglers at large n); [8]'s qualitative claim is the
            # giant coverage, which must stay essentially complete.
            "tokens_giant_fraction_high": by_name["random-walk tokens [8]"][
                "giant_fraction"
            ]
            > 0.99,
            "sdgr_and_cache_flood_fast": all(
                by_name[name]["flood_over_log2_n"] < 4.0
                for name in ["SDGR (paper, regen)", "central cache [23]"]
            ),
        },
        notes=(
            "Baselines are simplified but mechanism-faithful (see "
            "repro.baselines docstrings); the comparison is qualitative — "
            "connectivity and flooding speed at equal n, d, churn.  The "
            "simplified token protocol occasionally leaves a straggler "
            "outside the giant component (token starvation), so its score "
            "is giant coverage, not strict connectivity."
        ),
        elapsed_seconds=watch.elapsed,
    )
