"""EXP-07 — degree structure.

Reproduces Lemma 6.1 (expected degree d, hence nd/2 expected edges in the
streaming snapshot), the exactness of SDGR's out-degree (d·n request
edges), and the §5 remark that the maximum degree is Θ(log n) — checked by
fitting the max degree against log n across an n-sweep.

Degree statistics come from :class:`DegreeStatsObserver`, which reads the
session's shared per-window :class:`~repro.core.csr.CSRView` (no dict
freeze); only the SDGR request-exactness check still freezes a snapshot,
because out-slot identities are not part of the CSR adjacency.
"""

from __future__ import annotations

import math

from repro.analysis.degrees import in_out_degree_split
from repro.experiments.common import ExperimentResult, Stopwatch
from repro.experiments.registry import register
from repro.scenario import DegreeStatsObserver, ScenarioSpec, simulate
from repro.util.rng import derive_seed, derive_seeds
from repro.util.stats import log_scaling_fit, mean_confidence_interval

COLUMNS = [
    "model",
    "n",
    "d",
    "mean_degree",
    "expected",
    "max_degree",
    "max_over_log_n",
]

SDG_SPEC = ScenarioSpec(churn="streaming", policy="none")
SDGR_SPEC = ScenarioSpec(churn="streaming", policy="regen")
PDGR_SPEC = ScenarioSpec(churn="poisson", policy="regen")


@register(
    "EXP-07",
    "Degree structure: mean d, exact out-degree, Θ(log n) max degree",
    "Lemma 6.1; §5 max-degree remark",
)
def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    if quick:
        n_sweep, trials, d = [200, 400, 800], 3, 4
    else:
        n_sweep, trials, d = [250, 500, 1000, 2000, 4000], 5, 4

    rows: list[dict] = []
    with Stopwatch() as watch:
        max_degrees: list[float] = []
        mean_ok = True
        for n in n_sweep:
            means, maxes = [], []
            for child in derive_seeds(seed, "exp07-sdg", trials):
                sim = simulate(
                    SDG_SPEC.with_(n=n, d=d, horizon=n),
                    seed=child,
                    observers=[DegreeStatsObserver()],
                )
                summary = sim.results()["degrees"]["final"]
                means.append(summary["mean_degree"])
                maxes.append(summary["max_degree"])
            mean_ci = mean_confidence_interval(means)
            max_mean = mean_confidence_interval(maxes).mean
            max_degrees.append(max_mean)
            if abs(mean_ci.mean - d) > 0.25 * d:
                mean_ok = False
            rows.append(
                {
                    "model": "SDG",
                    "n": n,
                    "d": d,
                    "mean_degree": mean_ci.mean,
                    "expected": float(d),
                    "max_degree": max_mean,
                    "max_over_log_n": max_mean / math.log(n),
                }
            )

        # SDGR: exactly d·n live requests at every snapshot.
        exact_ok = True
        for child in derive_seeds(seed, "exp07-sdgr", trials):
            sim = simulate(
                SDGR_SPEC.with_(n=n_sweep[0], d=d, horizon=n_sweep[0]),
                seed=child,
            )
            split = in_out_degree_split(sim.snapshot())
            total_out = sum(o for o, _ in split.values())
            if total_out != d * n_sweep[0]:
                exact_ok = False
        rows.append(
            {
                "model": "SDGR",
                "n": n_sweep[0],
                "d": d,
                "mean_degree": 2.0 * d,  # d out + d expected in
                "expected": 2.0 * d,
                "max_degree": None,
                "max_over_log_n": None,
            }
        )

        # PDGR mean degree sanity.
        sim = simulate(
            PDGR_SPEC.with_(n=n_sweep[0], d=d),
            seed=derive_seed(seed, "exp07-pdgr", 0),
            observers=[DegreeStatsObserver()],
        )
        pdgr_summary = sim.results()["degrees"]["final"]
        rows.append(
            {
                "model": "PDGR",
                "n": n_sweep[0],
                "d": d,
                "mean_degree": pdgr_summary["mean_degree"],
                "expected": 2.0 * d,
                "max_degree": pdgr_summary["max_degree"],
                "max_over_log_n": pdgr_summary["max_degree"]
                / math.log(n_sweep[0]),
            }
        )

        fit = log_scaling_fit(n_sweep, max_degrees)

    return ExperimentResult(
        experiment_id="EXP-07",
        title="Degree structure",
        paper_reference="Lemma 6.1; §5 max-degree remark",
        columns=COLUMNS,
        rows=rows,
        verdict={
            "sdg_mean_degree_matches_d": mean_ok,
            "sdgr_out_requests_exactly_dn": exact_ok,
            "max_degree_vs_log_n_slope": fit.slope,
            "max_degree_vs_log_n_r2": fit.r_squared,
            "max_degree_scales_logarithmically": fit.r_squared > 0.5
            and fit.slope > 0,
        },
        notes=(
            "SDGR/PDGR mean degree ≈ 2d (every node holds d live requests "
            "and receives d in expectation); SDG's is exactly d by "
            "Lemma 6.1."
        ),
        elapsed_seconds=watch.elapsed,
    )
