"""CLI for the experiment harness: ``python -m repro.experiments``."""

from __future__ import annotations

import argparse
import sys

from repro.core.backend import BACKEND_NAMES
from repro.experiments.registry import all_experiments, run_experiment


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment_ids",
        nargs="*",
        help="experiment ids to run (e.g. EXP-01 EXP-06)",
    )
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument(
        "--full",
        action="store_true",
        help="use the full (EXPERIMENTS.md) parameters instead of quick mode",
    )
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    parser.add_argument(
        "--backend",
        choices=list(BACKEND_NAMES),
        default=None,
        help="topology backend for every simulated network "
        "(default: REPRO_BACKEND env var, else dict)",
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        default=None,
        help="also write each experiment's rows to DIR/<EXP-ID>.csv",
    )
    args = parser.parse_args(argv)

    if args.list or (not args.experiment_ids and not args.all):
        for experiment in all_experiments():
            print(
                f"{experiment.experiment_id}: {experiment.title}"
                f"  [{experiment.paper_reference}]"
            )
        return 0

    ids = (
        [e.experiment_id for e in all_experiments()]
        if args.all
        else args.experiment_ids
    )
    failures = 0
    for experiment_id in ids:
        result = run_experiment(
            experiment_id,
            quick=not args.full,
            seed=args.seed,
            backend=args.backend,
        )
        print(result.to_text())
        if args.csv:
            path = result.write_csv(args.csv)
            print(f"csv: {path}")
        print()
        if not result.passed():
            failures += 1
    if failures:
        print(f"{failures} experiment(s) had failing verdict entries")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
