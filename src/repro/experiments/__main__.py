"""``python -m repro.experiments`` — the historical CLI entry point.

The implementation lives in :mod:`repro.cli` (a thin adapter over the
programmatic :mod:`repro.api`); this module re-exports it so the entry
point every script, Makefile, and CI job already uses keeps working —
including the ``sweep {run,worker,reduce,status}`` subcommands added
by the fleet-scale sweep plane.
"""

from __future__ import annotations

import sys

from repro.cli.main import (
    main,
    run_restore,
    run_scenario_file,
    run_sweep_file,
)

__all__ = ["main", "run_restore", "run_scenario_file", "run_sweep_file"]

if __name__ == "__main__":
    sys.exit(main())
