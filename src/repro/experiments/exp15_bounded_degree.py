"""EXP-15 (extension) — bounded-degree regeneration (§5 open question).

The paper's §5 notes that its dynamics allow Θ(log n) maximum degree and
asks for natural fully-random dynamics with *bounded* degrees and good
expansion.  This experiment probes the obvious candidate — regeneration
with a hard in-degree cap (Bitcoin Core's 125-peer limit scaled down) —
and measures what the cap costs: maximum degree (it works), out-degree
completeness, expansion, and flooding time.
"""

from __future__ import annotations

import math

from repro.analysis.degrees import degree_summary
from repro.analysis.expansion import adversarial_expansion_upper_bound
from repro.experiments.common import ExperimentResult, Stopwatch, trial_seeds
from repro.experiments.registry import register
from repro.scenario import ScenarioSpec, simulate
from repro.theory.expansion import EXPANSION_THRESHOLD
from repro.util.stats import mean_confidence_interval

COLUMNS = [
    "policy",
    "n",
    "d",
    "cap",
    "max_degree",
    "mean_out_degree",
    "worst_expansion",
    "flood_rounds",
]


@register(
    "EXP-15",
    "Extension: in-degree-capped regeneration (bounded-degree dynamics)",
    "§5 open question; Bitcoin Core's max-inbound mechanism",
)
def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    if quick:
        n, d, trials = 300, 6, 2
        caps = [2 * 6, 4 * 6]
    else:
        n, d, trials = 1000, 6, 4
        caps = [6, 2 * 6, 4 * 6]

    base = ScenarioSpec(
        churn="streaming",
        n=n,
        d=d,
        horizon=n,
        protocol="discrete",
        protocol_params={"max_rounds": 40 * int(math.log2(n))},
    )

    rows: list[dict] = []
    with Stopwatch() as watch:
        configs: list[tuple[str, int | None]] = [("uncapped (SDGR)", None)]
        configs += [(f"cap={cap}", cap) for cap in caps]
        for label, cap in configs:
            if cap is None:
                spec = base.with_(policy="regen")
            else:
                spec = base.with_(
                    policy="capped", policy_params={"max_in_degree": cap}
                )
            max_degrees, out_means, expansions, floods = [], [], [], []
            for child in trial_seeds(seed, trials):
                sim = simulate(spec, seed=child)
                snap = sim.snapshot()
                summary = degree_summary(snap)
                max_degrees.append(summary.max_degree)
                out_means.append(
                    sum(
                        sum(1 for t in slots if t is not None)
                        for slots in snap.out_slots.values()
                    )
                    / snap.num_nodes()
                )
                probe = adversarial_expansion_upper_bound(snap, seed=child)
                expansions.append(probe.min_ratio)
                flood = sim.flood()
                floods.append(
                    flood.completion_round
                    if flood.completed and flood.completion_round is not None
                    else float("nan")
                )
            finite = [f for f in floods if f == f]
            rows.append(
                {
                    "policy": label,
                    "n": n,
                    "d": d,
                    "cap": cap,
                    "max_degree": max(max_degrees),
                    "mean_out_degree": mean_confidence_interval(out_means).mean,
                    "worst_expansion": min(expansions),
                    "flood_rounds": (
                        mean_confidence_interval(finite).mean if finite else None
                    ),
                }
            )

    capped_rows = [r for r in rows if r["cap"] is not None]
    uncapped = rows[0]
    return ExperimentResult(
        experiment_id="EXP-15",
        title="Extension: in-degree-capped regeneration",
        paper_reference="§5 open question",
        columns=COLUMNS,
        rows=rows,
        verdict={
            "cap_bounds_max_degree": all(
                r["max_degree"] <= r["cap"] + d for r in capped_rows
            ),
            "uncapped_max_degree": uncapped["max_degree"],
            "moderate_cap_keeps_expansion": any(
                r["worst_expansion"] > EXPANSION_THRESHOLD for r in capped_rows
            ),
            "moderate_cap_keeps_fast_flooding": any(
                r["flood_rounds"] is not None
                and r["flood_rounds"] <= 6 * math.log2(n)
                for r in capped_rows
            ),
        },
        notes=(
            "Extension beyond the paper: a hard in-degree cap (max_degree "
            "≤ cap + d out-slots) empirically preserves the 0.1 expansion "
            "and O(log n) flooding at caps of a small multiple of d — "
            "evidence for the §5 conjecture that bounded-degree random "
            "dynamics can retain expansion."
        ),
        elapsed_seconds=watch.elapsed,
    )
