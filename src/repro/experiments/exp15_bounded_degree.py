"""EXP-15 (extension) — bounded-degree dynamics (§5 open question).

The paper's §5 notes that its dynamics allow Θ(log n) maximum degree and
asks for natural fully-random dynamics with *bounded* degrees and good
expansion.  This experiment runs the three-way comparison:

* **uncapped SDGR** — the paper's regeneration dynamic (the baseline:
  Θ(log n) max degree, expander, O(log n) flooding);
* **capped regeneration** — a hard in-degree cap with a bounded retry
  budget (Bitcoin Core's 125-peer limit scaled down): slots that cannot
  find an unsaturated target are given up, so out-degrees may dip;
* **RAES** (Cruciani 2025, arXiv:2506.17757) — out-degree exactly ``d``,
  in-degree cap ``c·d``, saturated targets reject and the requester
  re-samples; the §5 candidate with a *guaranteed* degree bound.

Measured per dynamic: maximum degree, out-degree completeness, expansion,
and flooding time.
"""

from __future__ import annotations

import math

from repro.analysis.degrees import degree_summary
from repro.analysis.expansion import adversarial_expansion_upper_bound
from repro.experiments.common import ExperimentResult, Stopwatch
from repro.experiments.registry import register
from repro.scenario import ScenarioSpec, simulate
from repro.sweep import SweepSpec, measurement, run_sweep
from repro.theory.expansion import EXPANSION_THRESHOLD
from repro.util.rng import SeedLike
from repro.util.stats import mean_confidence_interval

COLUMNS = [
    "policy",
    "n",
    "d",
    "cap",
    "max_degree",
    "mean_out_degree",
    "worst_expansion",
    "flood_rounds",
]


@measurement("exp15-policy-cell")
def policy_cell(spec: ScenarioSpec, seed: SeedLike) -> dict:
    """One bounded-degree comparison cell: degrees, expansion, flooding."""
    sim = simulate(spec, seed=seed)
    snap = sim.snapshot()
    summary = degree_summary(snap)
    mean_out = (
        sum(
            sum(1 for t in slots if t is not None)
            for slots in snap.out_slots.values()
        )
        / snap.num_nodes()
    )
    probe = adversarial_expansion_upper_bound(snap, seed=seed)
    flood = sim.flood()
    return {
        "max_degree": int(summary.max_degree),
        "mean_out_degree": float(mean_out),
        "min_ratio": float(probe.min_ratio),
        "flood_rounds": (
            flood.completion_round
            if flood.completed and flood.completion_round is not None
            else None
        ),
    }


@register(
    "EXP-15",
    "Extension: bounded-degree dynamics (uncapped vs capped vs RAES)",
    "§5 open question; Bitcoin Core's max-inbound mechanism; Cruciani 2025",
)
def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    if quick:
        n, d, trials = 300, 6, 2
        caps = [2 * 6, 4 * 6]
        raes_cs = [2.0]
    else:
        n, d, trials = 1000, 6, 4
        caps = [6, 2 * 6, 4 * 6]
        # The RAES guarantee needs slack: c > 1 strictly (Cruciani 2025);
        # at c = 1 capacity exactly equals demand and uniform re-sampling
        # cannot always find the last unsaturated targets.
        raes_cs = [1.5, 2.0]

    base = ScenarioSpec(
        churn="streaming",
        n=n,
        d=d,
        horizon=n,
        protocol="discrete",
        protocol_params={"max_rounds": 40 * int(math.log2(n))},
    )

    # (label, policy overrides, effective in-degree cap or None)
    configs: list[tuple[str, dict, int | None]] = [
        ("uncapped (SDGR)", {"policy": "regen", "policy_params": {}}, None)
    ]
    configs += [
        (
            f"cap={cap}",
            {"policy": "capped", "policy_params": {"max_in_degree": cap}},
            cap,
        )
        for cap in caps
    ]
    configs += [
        (
            f"RAES c={c:g}",
            {"policy": "raes", "policy_params": {"c": c}},
            int(c * d),
        )
        for c in raes_cs
    ]
    sweep = SweepSpec(
        base=base,
        axes=[("scenario", tuple(overrides for _, overrides, _ in configs))],
        replicas=trials,
        seed=seed,
        stream="exp15-policies",
        measure="exp15-policy-cell",
    )

    rows: list[dict] = []
    with Stopwatch() as watch:
        groups = run_sweep(sweep).value_groups()
        for (label, _, cap), cells in zip(configs, groups):
            finite = [
                c["flood_rounds"]
                for c in cells
                if c["flood_rounds"] is not None
            ]
            rows.append(
                {
                    "policy": label,
                    "n": n,
                    "d": d,
                    "cap": cap,
                    "max_degree": max(c["max_degree"] for c in cells),
                    "mean_out_degree": mean_confidence_interval(
                        [c["mean_out_degree"] for c in cells]
                    ).mean,
                    "worst_expansion": min(c["min_ratio"] for c in cells),
                    "flood_rounds": (
                        mean_confidence_interval(finite).mean if finite else None
                    ),
                }
            )

    bounded_rows = [r for r in rows if r["cap"] is not None]
    raes_rows = [r for r in rows if r["policy"].startswith("RAES")]
    uncapped = rows[0]
    return ExperimentResult(
        experiment_id="EXP-15",
        title="Extension: bounded-degree dynamics (uncapped vs capped vs RAES)",
        paper_reference="§5 open question",
        columns=COLUMNS,
        rows=rows,
        verdict={
            "cap_bounds_max_degree": all(
                r["max_degree"] <= r["cap"] + d for r in bounded_rows
            ),
            "uncapped_max_degree": uncapped["max_degree"],
            "moderate_cap_keeps_expansion": any(
                r["worst_expansion"] > EXPANSION_THRESHOLD for r in bounded_rows
            ),
            "moderate_cap_keeps_fast_flooding": any(
                r["flood_rounds"] is not None
                and r["flood_rounds"] <= 6 * math.log2(n)
                for r in bounded_rows
            ),
            # The RAES contract: out-degree stays exactly d (capacity c*d
            # >= d always leaves a free slot somewhere), unlike the capped
            # policy whose give-up rule may leave slots empty.
            "raes_keeps_full_out_degree": all(
                abs(r["mean_out_degree"] - d) < 1e-9 for r in raes_rows
            ),
        },
        notes=(
            "Extension beyond the paper: both bounded-degree dynamics keep "
            "max_degree ≤ cap + d out-slots while preserving the 0.1 "
            "expansion and O(log n) flooding at caps of a small multiple "
            "of d.  RAES (saturated targets reject, requester re-samples) "
            "additionally keeps every out-degree at exactly d — evidence "
            "for the §5 conjecture that natural bounded-degree random "
            "dynamics retain expansion."
        ),
        elapsed_seconds=watch.elapsed,
    )
