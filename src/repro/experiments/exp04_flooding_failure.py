"""EXP-04 — flooding can fail without regeneration.

Reproduces Theorem 3.7 (SDG) and Theorem 4.12 (PDG):

1. with probability Θ_d(1) (bounded below by Ω(e^{−d²})) the informed set
   never exceeds ``d + 1`` nodes — the source's targets are all
   isolated-forever nodes;
2. *complete* flooding (informing every node) takes Ω_d(n) time, because
   isolated nodes can only "complete" by dying.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, Stopwatch
from repro.experiments.registry import register
from repro.scenario import ScenarioSpec
from repro.sweep import SweepSpec, run_sweep
from repro.theory.flooding import (
    stall_probability_bound,
    stall_probability_prediction,
)
from repro.util.stats import fraction_true

COLUMNS = [
    "model",
    "n",
    "d",
    "trials",
    "stall_probability",
    "prediction",
    "paper_lower_bound",
    "above_paper_bound",
]

SDG_SPEC = ScenarioSpec(churn="streaming", policy="none", protocol="discrete")
PDG_SPEC = ScenarioSpec(churn="poisson", policy="none", protocol="asynchronous")


@register(
    "EXP-04",
    "Flooding may not complete without regeneration",
    "Table 1 row 3; Theorem 3.7 (SDG), Theorem 4.12 (PDG)",
)
def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    if quick:
        n, trials, ds = 150, 120, [1]
    else:
        n, trials, ds = 300, 400, [1, 2]

    pdg_trials = max(trials // 3, 30)
    sdg_sweep = SweepSpec(
        base=SDG_SPEC.with_(
            n=n,
            horizon=n,
            protocol_params={"max_rounds": 2 * n, "stop_when_extinct": False},
        ),
        axes=[("d", tuple(ds))],
        replicas=trials,
        seed=seed,
        stream="exp04-sdg",
        measure="flood_stats",
    )
    pdg_sweep = SweepSpec(
        base=PDG_SPEC.with_(n=n, protocol_params={"max_time": float(2 * n)}),
        axes=[("d", tuple(ds))],
        replicas=pdg_trials,
        seed=seed,
        stream="exp04-pdg",
        measure="flood_stats",
    )

    rows: list[dict] = []
    with Stopwatch() as watch:
        completion_rounds: list[int] = []
        for d, floods in zip(ds, run_sweep(sdg_sweep).value_groups()):
            stalls = [flood["max_informed"] <= d + 1 for flood in floods]
            completion_rounds.extend(
                flood["completion_round"]
                for flood in floods
                if flood["completed"] and flood["completion_round"] is not None
            )
            probability = fraction_true(stalls)
            rows.append(
                {
                    "model": "SDG",
                    "n": n,
                    "d": d,
                    "trials": trials,
                    "stall_probability": probability,
                    "prediction": stall_probability_prediction(d),
                    "paper_lower_bound": stall_probability_bound(d),
                    # Only resolvable when the predicted rate would yield
                    # a few events at this trial count.
                    "above_paper_bound": (
                        probability >= stall_probability_bound(d)
                        if stall_probability_prediction(d) * trials >= 3
                        else None
                    ),
                }
            )

        for d, floods in zip(ds, run_sweep(pdg_sweep).value_groups()):
            stalls = [flood["max_informed"] <= d + 1 for flood in floods]
            probability = fraction_true(stalls)
            rows.append(
                {
                    "model": "PDG",
                    "n": n,
                    "d": d,
                    "trials": pdg_trials,
                    "stall_probability": probability,
                    "prediction": stall_probability_prediction(d, streaming=False),
                    "paper_lower_bound": stall_probability_bound(d, streaming=False),
                    "above_paper_bound": (
                        probability
                        >= stall_probability_bound(d, streaming=False)
                        if stall_probability_prediction(d, streaming=False)
                        * pdg_trials
                        >= 3
                        else None
                    ),
                }
            )

        # Completion-time lower bound: the theorem's Ω_d(n) holds w.h.p.,
        # not surely — a lucky snapshot with zero isolated-forever nodes
        # completes fast.  Measure the *typical* (median) completion time
        # and the fraction of abnormally early completions.
        completion_rounds.sort()
        median_completion = (
            completion_rounds[len(completion_rounds) // 2]
            if completion_rounds
            else None
        )
        early_fraction = (
            sum(1 for r in completion_rounds if r < 0.4 * n)
            / len(completion_rounds)
            if completion_rounds
            else 0.0
        )

    return ExperimentResult(
        experiment_id="EXP-04",
        title="Flooding may not complete without regeneration",
        paper_reference="Theorem 3.7 (SDG), Theorem 4.12 (PDG)",
        columns=COLUMNS,
        rows=rows,
        verdict={
            "stall_observed_with_constant_probability": any(
                r["stall_probability"] > 0 for r in rows
            ),
            "all_resolvable_rows_above_paper_bound": all(
                r["above_paper_bound"]
                for r in rows
                if r["above_paper_bound"] is not None
            ),
            "median_completion_round_when_completed": median_completion,
            "early_completion_fraction": early_fraction,
            "completion_typically_takes_omega_n": (
                median_completion is None or median_completion >= 0.4 * n
            ),
            "n": n,
        },
        notes=(
            "The paper's Ω(e^{−d²}) constants are astronomically small; "
            "the measurable regime is d ∈ {1, 2} where the first-order "
            "prediction p_iso^d·e^{−d} gives percent-level probabilities. "
            "Completion requires waiting for isolated nodes to die, hence "
            "≥ Ω(n) rounds whenever flooding completes at all."
        ),
        elapsed_seconds=watch.elapsed,
    )
