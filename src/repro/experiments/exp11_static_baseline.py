"""EXP-11 — the static d-out baseline (Lemma B.1).

Reproduces the appendix baseline: a *static* graph where every node picks
``d`` random neighbours is a Θ(1)-expander w.h.p. already at ``d = 3`` —
in stark contrast with the *dynamic* SDG at the same ``d``, which has
isolated nodes.  This is the cleanest demonstration that the paper's
negative results come from churn, not from sparsity.
"""

from __future__ import annotations

from repro.analysis.expansion import adversarial_expansion_upper_bound
from repro.analysis.isolated import isolated_fraction
from repro.experiments.common import ExperimentResult, Stopwatch
from repro.experiments.registry import register
from repro.models import static_d_out_snapshot
from repro.scenario import ScenarioSpec, simulate
from repro.theory.static import nonexpansion_union_bound
from repro.util.rng import derive_seeds
from repro.util.stats import mean_confidence_interval

SDG_SPEC = ScenarioSpec(churn="streaming", policy="none")

COLUMNS = [
    "graph",
    "n",
    "d",
    "worst_expansion_found",
    "isolated_fraction",
    "expander_above_0.1",
]


@register(
    "EXP-11",
    "Static d-out baseline vs dynamic SDG at equal d",
    "Lemma B.1 (appendix); contrast with Lemma 3.5",
)
def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    if quick:
        n, trials, ds = 300, 2, [3, 4]
    else:
        n, trials, ds = 1500, 4, [3, 4, 6]

    rows: list[dict] = []
    with Stopwatch() as watch:
        union_bounds = {}
        for d in ds:
            worst = float("inf")
            for child in derive_seeds(seed, "exp11-static", trials):
                snap = static_d_out_snapshot(n, d, seed=child)
                probe = adversarial_expansion_upper_bound(snap, seed=child)
                worst = min(worst, probe.min_ratio)
            rows.append(
                {
                    "graph": "static d-out",
                    "n": n,
                    "d": d,
                    "worst_expansion_found": worst,
                    "isolated_fraction": 0.0,
                    "expander_above_0.1": worst > 0.1,
                }
            )
            union_bounds[d] = nonexpansion_union_bound(n, d)

            fractions = []
            for child in derive_seeds(seed, "exp11-dynamic", trials):
                sim = simulate(SDG_SPEC.with_(n=n, d=d, horizon=n), seed=child)
                fractions.append(isolated_fraction(sim.snapshot()))
            iso = mean_confidence_interval(fractions).mean
            rows.append(
                {
                    "graph": "SDG (dynamic)",
                    "n": n,
                    "d": d,
                    "worst_expansion_found": 0.0 if iso > 0 else None,
                    "isolated_fraction": iso,
                    "expander_above_0.1": False if iso > 0 else None,
                }
            )

    static_rows = [r for r in rows if r["graph"] == "static d-out"]
    sdg_rows = [r for r in rows if r["graph"] != "static d-out"]
    return ExperimentResult(
        experiment_id="EXP-11",
        title="Static d-out baseline vs dynamic SDG",
        paper_reference="Lemma B.1; contrast with Lemma 3.5",
        columns=COLUMNS,
        rows=rows,
        verdict={
            "static_graphs_expand_at_d3": all(
                r["expander_above_0.1"] for r in static_rows
            ),
            "dynamic_sdg_has_isolated_nodes": all(
                r["isolated_fraction"] > 0 for r in sdg_rows
            ),
            "lemma_b1_union_bound_at_d3": union_bounds.get(3),
            "contrast_reproduced": all(
                r["expander_above_0.1"] for r in static_rows
            )
            and any(r["isolated_fraction"] > 0 for r in sdg_rows),
        },
        elapsed_seconds=watch.elapsed,
    )
