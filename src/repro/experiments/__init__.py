"""Experiment harness — one module per table/figure of the reproduction.

Run from the command line::

    python -m repro.experiments --list
    python -m repro.experiments EXP-01
    python -m repro.experiments --all
    python -m repro.experiments --all --full   # EXPERIMENTS.md scale

or programmatically::

    from repro.experiments import run_experiment
    result = run_experiment("EXP-06", quick=True, seed=0)
    print(result.to_text())
"""

from repro.experiments.common import ExperimentResult
from repro.experiments.registry import (
    Experiment,
    all_experiments,
    get_experiment,
    run_experiment,
)

__all__ = [
    "Experiment",
    "ExperimentResult",
    "all_experiments",
    "get_experiment",
    "run_experiment",
]
