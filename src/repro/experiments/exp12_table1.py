"""EXP-12 — the headline reproduction of the paper's Table 1.

One condensed measurement per Table-1 cell, producing the same 2×2×2
summary (expansion / flooding × with / without regeneration × streaming /
Poisson) with measured values instead of theorem citations.
"""

from __future__ import annotations

import math

from repro.analysis.expansion import (
    adversarial_expansion_upper_bound,
    large_set_expansion_probe,
)
from repro.analysis.isolated import isolated_fraction
from repro.experiments.common import ExperimentResult, Stopwatch, trial_seeds
from repro.experiments.registry import register
from repro.scenario import ScenarioSpec, simulate
from repro.theory.expansion import (
    large_set_window_poisson,
    large_set_window_streaming,
)
from repro.theory.flooding import partial_flooding_rounds
from repro.util.stats import fraction_true, mean_confidence_interval

COLUMNS = ["cell", "model", "paper_claim", "measured", "agrees"]

# The four Table-1 models as scenario templates; every cell below is one
# of these at a cell-specific (d, horizon, protocol).
SPECS = {
    "SDG": ScenarioSpec(churn="streaming", policy="none"),
    "SDGR": ScenarioSpec(churn="streaming", policy="regen"),
    "PDG": ScenarioSpec(churn="poisson", policy="none"),
    "PDGR": ScenarioSpec(churn="poisson", policy="regen"),
}


def _warm_sim(name: str, n: int, d: int, child, **spec_changes):
    """One warm Table-1 network (streaming models run n extra rounds)."""
    spec = SPECS[name].with_(n=n, d=d, **spec_changes)
    if name.startswith("S"):
        spec = spec.with_(horizon=n)
    return simulate(spec, seed=child)


@register(
    "EXP-12",
    "Table 1 — full summary with measured values",
    "Table 1 (all eight cells)",
)
def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    if quick:
        n, trials, d_noregen, d_regen = 300, 3, 20, 21
    else:
        n, trials, d_noregen, d_regen = 1000, 5, 20, 21
    d_pdgr = 35

    rows: list[dict] = []
    with Stopwatch() as watch:
        # --- Expansion negative: isolated nodes without regeneration.
        for name in ["SDG", "PDG"]:
            fractions = []
            for child in trial_seeds(seed, trials):
                sim = _warm_sim(name, n, 2, child)
                fractions.append(isolated_fraction(sim.snapshot()))
            mean_fraction = mean_confidence_interval(fractions).mean
            rows.append(
                {
                    "cell": "expansion / negative",
                    "model": name,
                    "paper_claim": "constant fraction of isolated nodes (d=2)",
                    "measured": f"isolated fraction {mean_fraction:.3f}",
                    "agrees": mean_fraction > 0,
                }
            )

        # --- Expansion positive: large sets expand without regeneration.
        for name in ["SDG", "PDG"]:
            worst = float("inf")
            for child in trial_seeds(seed + 1, trials):
                if name == "SDG":
                    low, high = large_set_window_streaming(n, d_noregen)
                else:
                    low, high = large_set_window_poisson(n, d_noregen)
                snap = _warm_sim(name, n, d_noregen, child).snapshot()
                probe = large_set_expansion_probe(
                    snap,
                    min_size=low,
                    max_size=min(high, snap.num_nodes() // 2),
                    seed=child,
                )
                worst = min(worst, probe.min_ratio)
            rows.append(
                {
                    "cell": "expansion / large sets",
                    "model": name,
                    "paper_claim": "big subsets expand ≥ 0.1 (d=20)",
                    "measured": f"worst windowed expansion {worst:.3f}",
                    "agrees": worst > 0.1,
                }
            )

        # --- Expansion positive: full expanders with regeneration.
        for name, d_use in [("SDGR", 14), ("PDGR", d_pdgr)]:
            worst = float("inf")
            for child in trial_seeds(seed + 2, trials):
                snap = _warm_sim(name, n, d_use, child).snapshot()
                probe = adversarial_expansion_upper_bound(snap, seed=child)
                worst = min(worst, probe.min_ratio)
            rows.append(
                {
                    "cell": "expansion / regeneration",
                    "model": name,
                    "paper_claim": f"ε-expander, ε ≥ 0.1 (d={d_use})",
                    "measured": f"worst expansion {worst:.3f}",
                    "agrees": worst > 0.1,
                }
            )

        # --- Flooding negative: stall probability at d=1.
        stalls = []
        for child in trial_seeds(seed + 3, max(20, trials * 10)):
            sim = _warm_sim(
                "SDG", n, 1, child,
                protocol="discrete",
                protocol_params={"max_rounds": n, "stop_when_extinct": False},
            )
            res = sim.flood()
            stalls.append(res.max_informed <= 2)
        stall_probability = fraction_true(stalls)
        rows.append(
            {
                "cell": "flooding / negative",
                "model": "SDG/PDG",
                "paper_claim": "flooding stalls w.p. Θ_d(1) (d=1)",
                "measured": f"stall probability {stall_probability:.3f}",
                "agrees": stall_probability > 0,
            }
        )

        # --- Flooding positive: partial flooding without regeneration.
        for name in ["SDG", "PDG"]:
            fractions = []
            horizon = partial_flooding_rounds(n, 12)
            for child in trial_seeds(seed + 4, trials):
                sim = _warm_sim(
                    name, n, 12, child,
                    protocol="discrete" if name == "SDG" else "discretized",
                    protocol_params={"max_rounds": horizon},
                )
                fractions.append(sim.flood().fraction_at(horizon))
            mean_fraction = mean_confidence_interval(fractions).mean
            rows.append(
                {
                    "cell": "flooding / partial",
                    "model": name,
                    "paper_claim": "1−exp(−Ω(d)) informed in O(log n) (d=12)",
                    "measured": f"informed fraction {mean_fraction:.3f} in {horizon} rounds",
                    "agrees": mean_fraction > 0.65,
                }
            )

        # --- Flooding positive: complete flooding with regeneration.
        for name, d_use in [("SDGR", d_regen), ("PDGR", d_pdgr)]:
            completions = []
            for child in trial_seeds(seed + 5, trials):
                sim = _warm_sim(
                    name, n, d_use, child,
                    protocol="discrete" if name == "SDGR" else "discretized",
                    protocol_params={"max_rounds": 40 * int(math.log2(n))},
                )
                res = sim.flood()
                completions.append(
                    res.completion_round if res.completed else math.inf
                )
            worst_completion = max(completions)
            rows.append(
                {
                    "cell": "flooding / complete",
                    "model": name,
                    "paper_claim": f"flooding time O(log n) w.h.p. (d={d_use})",
                    "measured": f"worst completion {worst_completion} rounds "
                    f"(log2 n = {math.log2(n):.1f})",
                    "agrees": worst_completion <= 6 * math.log2(n),
                }
            )

    return ExperimentResult(
        experiment_id="EXP-12",
        title="Table 1 — full summary with measured values",
        paper_reference="Table 1",
        columns=COLUMNS,
        rows=rows,
        verdict={
            "all_cells_agree": all(r["agrees"] for r in rows),
            "cells_measured": len(rows),
        },
        elapsed_seconds=watch.elapsed,
    )
