"""EXP-12 — the headline reproduction of the paper's Table 1.

One condensed measurement per Table-1 cell, producing the same 2×2×2
summary (expansion / flooding × with / without regeneration × streaming /
Poisson) with measured values instead of theorem citations.
"""

from __future__ import annotations

import math

from repro.experiments.common import ExperimentResult, Stopwatch
from repro.experiments.registry import register
from repro.scenario import ScenarioSpec
from repro.sweep import SweepSpec, fraction_at_round, run_sweep
from repro.theory.flooding import partial_flooding_rounds
from repro.util.stats import fraction_true, mean_confidence_interval

COLUMNS = ["cell", "model", "paper_claim", "measured", "agrees"]

# The four Table-1 models as scenario templates; every cell below is one
# of these at a cell-specific (d, horizon, protocol).
SPECS = {
    "SDG": ScenarioSpec(churn="streaming", policy="none"),
    "SDGR": ScenarioSpec(churn="streaming", policy="regen"),
    "PDG": ScenarioSpec(churn="poisson", policy="none"),
    "PDGR": ScenarioSpec(churn="poisson", policy="regen"),
}


def _model_overrides(name: str, n: int, d: int, **changes) -> dict:
    """Scenario-axis overrides for one warm Table-1 model instance
    (streaming models run n extra rounds to reach age-stationarity)."""
    spec = SPECS[name]
    overrides = {
        "churn": spec.churn,
        "policy": spec.policy,
        "d": d,
        "horizon": n if name.startswith("S") else 0,
        **changes,
    }
    return overrides


def _model_sweep(
    models: list[dict], n: int, trials: int, seed: int, stream: str,
    measure: str,
) -> SweepSpec:
    """One Table-1 section: a model axis × `trials` seed replicas."""
    return SweepSpec(
        base=SPECS["SDG"].with_(n=n),
        axes=[("scenario", tuple(models))],
        replicas=trials,
        seed=seed,
        stream=stream,
        measure=measure,
    )


@register(
    "EXP-12",
    "Table 1 — full summary with measured values",
    "Table 1 (all eight cells)",
)
def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    if quick:
        n, trials, d_noregen, d_regen = 300, 3, 20, 21
    else:
        n, trials, d_noregen, d_regen = 1000, 5, 20, 21
    d_pdgr = 35

    partial_horizon = partial_flooding_rounds(n, 12)
    complete_rounds = 40 * int(math.log2(n))
    # One declared sweep per Table-1 section, each on its own named seed
    # stream (the old trial_seeds(seed + k) families, made explicit).
    sweeps = {
        "isolated": _model_sweep(
            [_model_overrides(m, n, 2) for m in ("SDG", "PDG")],
            n, trials, seed, "exp12-isolated", "isolated_fraction",
        ),
        "window": _model_sweep(
            [_model_overrides(m, n, d_noregen) for m in ("SDG", "PDG")],
            n, trials, seed, "exp12-window", "window_expansion_probe",
        ),
        "regen": _model_sweep(
            [
                _model_overrides("SDGR", n, 14),
                _model_overrides("PDGR", n, d_pdgr),
            ],
            n, trials, seed, "exp12-regen", "adversarial_expansion",
        ),
        "stall": _model_sweep(
            [
                _model_overrides(
                    "SDG", n, 1,
                    protocol="discrete",
                    protocol_params={
                        "max_rounds": n, "stop_when_extinct": False,
                    },
                )
            ],
            n, max(20, trials * 10), seed, "exp12-stall", "flood_stats",
        ),
        "partial": _model_sweep(
            [
                _model_overrides(
                    m, n, 12,
                    protocol="discrete" if m == "SDG" else "discretized",
                    protocol_params={"max_rounds": partial_horizon},
                )
                for m in ("SDG", "PDG")
            ],
            n, trials, seed, "exp12-partial", "flood_stats",
        ),
        "complete": _model_sweep(
            [
                _model_overrides(
                    m, n, d_use,
                    protocol="discrete" if m == "SDGR" else "discretized",
                    protocol_params={"max_rounds": complete_rounds},
                )
                for m, d_use in (("SDGR", d_regen), ("PDGR", d_pdgr))
            ],
            n, trials, seed, "exp12-complete", "flood_stats",
        ),
    }

    rows: list[dict] = []
    with Stopwatch() as watch:
        # --- Expansion negative: isolated nodes without regeneration.
        groups = run_sweep(sweeps["isolated"]).value_groups()
        for name, fractions in zip(["SDG", "PDG"], groups):
            mean_fraction = mean_confidence_interval(fractions).mean
            rows.append(
                {
                    "cell": "expansion / negative",
                    "model": name,
                    "paper_claim": "constant fraction of isolated nodes (d=2)",
                    "measured": f"isolated fraction {mean_fraction:.3f}",
                    "agrees": mean_fraction > 0,
                }
            )

        # --- Expansion positive: large sets expand without regeneration.
        groups = run_sweep(sweeps["window"]).value_groups()
        for name, probes in zip(["SDG", "PDG"], groups):
            worst = min(probe["min_ratio"] for probe in probes)
            rows.append(
                {
                    "cell": "expansion / large sets",
                    "model": name,
                    "paper_claim": "big subsets expand ≥ 0.1 (d=20)",
                    "measured": f"worst windowed expansion {worst:.3f}",
                    "agrees": worst > 0.1,
                }
            )

        # --- Expansion positive: full expanders with regeneration.
        groups = run_sweep(sweeps["regen"]).value_groups()
        for (name, d_use), probes in zip(
            [("SDGR", 14), ("PDGR", d_pdgr)], groups
        ):
            worst = min(probe["min_ratio"] for probe in probes)
            rows.append(
                {
                    "cell": "expansion / regeneration",
                    "model": name,
                    "paper_claim": f"ε-expander, ε ≥ 0.1 (d={d_use})",
                    "measured": f"worst expansion {worst:.3f}",
                    "agrees": worst > 0.1,
                }
            )

        # --- Flooding negative: stall probability at d=1.
        floods = run_sweep(sweeps["stall"]).values()
        stall_probability = fraction_true(
            [flood["max_informed"] <= 2 for flood in floods]
        )
        rows.append(
            {
                "cell": "flooding / negative",
                "model": "SDG/PDG",
                "paper_claim": "flooding stalls w.p. Θ_d(1) (d=1)",
                "measured": f"stall probability {stall_probability:.3f}",
                "agrees": stall_probability > 0,
            }
        )

        # --- Flooding positive: partial flooding without regeneration.
        groups = run_sweep(sweeps["partial"]).value_groups()
        for name, floods in zip(["SDG", "PDG"], groups):
            mean_fraction = mean_confidence_interval(
                [fraction_at_round(flood, partial_horizon) for flood in floods]
            ).mean
            rows.append(
                {
                    "cell": "flooding / partial",
                    "model": name,
                    "paper_claim": "1−exp(−Ω(d)) informed in O(log n) (d=12)",
                    "measured": f"informed fraction {mean_fraction:.3f} "
                    f"in {partial_horizon} rounds",
                    "agrees": mean_fraction > 0.65,
                }
            )

        # --- Flooding positive: complete flooding with regeneration.
        groups = run_sweep(sweeps["complete"]).value_groups()
        for (name, d_use), floods in zip(
            [("SDGR", d_regen), ("PDGR", d_pdgr)], groups
        ):
            worst_completion = max(
                flood["completion_round"] if flood["completed"] else math.inf
                for flood in floods
            )
            rows.append(
                {
                    "cell": "flooding / complete",
                    "model": name,
                    "paper_claim": f"flooding time O(log n) w.h.p. (d={d_use})",
                    "measured": f"worst completion {worst_completion} rounds "
                    f"(log2 n = {math.log2(n):.1f})",
                    "agrees": worst_completion <= 6 * math.log2(n),
                }
            )

    return ExperimentResult(
        experiment_id="EXP-12",
        title="Table 1 — full summary with measured values",
        paper_reference="Table 1",
        columns=COLUMNS,
        rows=rows,
        verdict={
            "all_cells_agree": all(r["agrees"] for r in rows),
            "cells_measured": len(rows),
        },
        elapsed_seconds=watch.elapsed,
    )
