"""EXP-02 — expansion of large subsets without regeneration.

Reproduces Lemma 3.6 (SDG) and Lemma 4.11 (PDG): every subset whose size
falls in the window ``[n·e^{−d/10}, n/2]`` (streaming; ``e^{−d/20}`` for
Poisson) has vertex expansion ≥ 0.1, even though small sets do not expand
(isolated nodes exist).  The adversarial probe searches the window with
age-extreme, low-degree, greedy and random candidates; the claim is
reproduced when even the worst candidate found stays above the threshold.

The probe runs on the CSR analysis plane: the session exports a zero-copy
:class:`~repro.core.csr.CSRView` (no dict freeze) and the vectorized
portfolio returns exactly what the snapshot-path reference would.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, Stopwatch
from repro.experiments.registry import register
from repro.scenario import ScenarioSpec
from repro.sweep import SweepSpec, run_sweep
from repro.theory.expansion import EXPANSION_THRESHOLD

COLUMNS = [
    "model",
    "n",
    "d",
    "window_low",
    "window_high",
    "worst_ratio_found",
    "worst_size",
    "above_0.1",
]

SPECS = {
    "SDG": ScenarioSpec(churn="streaming", policy="none"),
    "PDG": ScenarioSpec(churn="poisson", policy="none"),
}


@register(
    "EXP-02",
    "Θ(1)-expansion of large subsets (no regeneration)",
    "Table 1 row 2; Lemma 3.6 (SDG), Lemma 4.11 (PDG)",
)
def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    if quick:
        n, trials, ds = 300, 2, [20]
    else:
        n, trials, ds = 1200, 4, [20, 26, 32]

    # The d × model grid with `trials` seed replicas per point, declared
    # as one sweep; the measurement derives each model's theory window
    # (streaming e^{−d/10}, Poisson e^{−d/20}) from the cell's scenario.
    sweep = SweepSpec(
        base=SPECS["SDG"].with_(n=n),
        axes=[
            ("d", tuple(ds)),
            (
                "scenario",
                (
                    {"churn": "streaming", "horizon": n},
                    {"churn": "poisson", "horizon": 0},
                ),
            ),
        ],
        replicas=trials,
        seed=seed,
        stream="exp02-window",
        measure="window_expansion_probe",
    )

    rows: list[dict] = []
    with Stopwatch() as watch:
        result = run_sweep(sweep)
        model_of = {"streaming": "SDG", "poisson": "PDG"}
        for overrides, probes in zip(
            result.point_overrides(), result.value_groups()
        ):
            worst = min(probes, key=lambda probe: probe["min_ratio"])
            rows.append(
                {
                    "model": model_of[overrides["scenario"]["churn"]],
                    "n": n,
                    "d": overrides["d"],
                    "window_low": worst["window_low"],
                    "window_high": worst["window_high"],
                    "worst_ratio_found": worst["min_ratio"],
                    "worst_size": worst["witness_size"],
                    "above_0.1": worst["min_ratio"] > EXPANSION_THRESHOLD,
                }
            )

    return ExperimentResult(
        experiment_id="EXP-02",
        title="Θ(1)-expansion of large subsets (no regeneration)",
        paper_reference="Lemma 3.6 (SDG), Lemma 4.11 (PDG)",
        columns=COLUMNS,
        rows=rows,
        verdict={
            "all_windows_expand_above_0.1": all(r["above_0.1"] for r in rows),
            "threshold": EXPANSION_THRESHOLD,
        },
        notes=(
            "Exact minimisation over all windowed subsets is intractable; "
            "the probe's minimum over adversarial candidates (oldest-k, "
            "youngest-k, low-degree-k, greedy growth, random) is a valid "
            "upper bound on the true windowed expansion."
        ),
        elapsed_seconds=watch.elapsed,
    )
