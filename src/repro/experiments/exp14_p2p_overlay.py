"""EXP-14 — the Bitcoin-like overlay behaves like PDGR.

Reproduces the motivating claim of §1.1/§5: a realistic unstructured P2P
overlay (address manager, DNS seeds, target out-degree 8, max in-degree
125, re-dialling) behaves like the idealised PDGR model — no isolated
nodes, connected snapshots, O(log n) flooding — even though peers only
know a *gossiped subset* of the network instead of sampling uniformly.
"""

from __future__ import annotations

import math

from repro.analysis.components import component_summary
from repro.analysis.degrees import degree_summary
from repro.experiments.common import ExperimentResult, Stopwatch
from repro.experiments.registry import register
from repro.scenario import ScenarioSpec, simulate
from repro.util.rng import derive_seeds
from repro.util.stats import mean_confidence_interval

SPECS = {
    "bitcoin-like": ScenarioSpec(
        churn="bitcoin", policy="none", d=8, protocol="discretized"
    ),
    "PDGR d=8": ScenarioSpec(
        churn="poisson", policy="regen", d=8, protocol="discretized"
    ),
}

COLUMNS = [
    "network",
    "n",
    "isolated",
    "connected",
    "mean_degree",
    "max_in_degree",
    "flood_completion",
    "flood_over_log2_n",
]


@register(
    "EXP-14",
    "Bitcoin-like overlay vs the PDGR abstraction",
    "§1.1 and §5 (Bitcoin motivation for PDGR)",
)
def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    if quick:
        ns, trials = [200, 400], 2
    else:
        ns, trials = [500, 1000, 2000], 3

    rows: list[dict] = []
    with Stopwatch() as watch:
        p2p_ratios, pdgr_ratios = [], []
        for n in ns:
            for label in ["bitcoin-like", "PDGR d=8"]:
                completions, isolated_counts, connected_flags = [], [], []
                degree_means, in_maxes = [], []
                for child in derive_seeds(seed, "exp14-overlay", trials):
                    sim = simulate(
                        SPECS[label].with_(
                            n=n,
                            protocol_params={
                                "max_rounds": 40 * int(math.log2(n))
                            },
                        ),
                        seed=child,
                    )
                    net = sim.network
                    snap = sim.snapshot()
                    summary = component_summary(snap)
                    isolated_counts.append(summary.num_isolated)
                    connected_flags.append(summary.is_connected)
                    degree_means.append(degree_summary(snap).mean_degree)
                    in_maxes.append(
                        max(
                            (
                                net.state.in_slot_count(u)
                                for u in net.state.alive_ids()
                            ),
                            default=0,
                        )
                    )
                    res = sim.flood()
                    completions.append(
                        res.completion_round
                        if res.completed and res.completion_round is not None
                        else float("nan")
                    )
                finite = [c for c in completions if c == c]
                mean_completion = (
                    mean_confidence_interval(finite).mean
                    if finite
                    else float("nan")
                )
                ratio = mean_completion / math.log2(n)
                (p2p_ratios if label == "bitcoin-like" else pdgr_ratios).append(
                    ratio
                )
                rows.append(
                    {
                        "network": label,
                        "n": n,
                        "isolated": max(isolated_counts),
                        "connected": all(connected_flags),
                        "mean_degree": mean_confidence_interval(
                            degree_means
                        ).mean,
                        "max_in_degree": max(in_maxes),
                        "flood_completion": mean_completion,
                        "flood_over_log2_n": ratio,
                    }
                )

    p2p_rows = [r for r in rows if r["network"] == "bitcoin-like"]
    return ExperimentResult(
        experiment_id="EXP-14",
        title="Bitcoin-like overlay vs the PDGR abstraction",
        paper_reference="§1.1 / §5",
        columns=COLUMNS,
        rows=rows,
        verdict={
            "overlay_has_no_isolated_nodes": all(
                r["isolated"] == 0 for r in p2p_rows
            ),
            "overlay_always_connected": all(r["connected"] for r in p2p_rows),
            "in_degree_cap_respected": all(
                r["max_in_degree"] <= 125 for r in p2p_rows
            ),
            "flooding_ratio_overlay": max(
                r["flood_over_log2_n"] for r in p2p_rows
            ),
            "overlay_flooding_logarithmic": all(
                r["flood_over_log2_n"] < 5.0
                for r in p2p_rows
                if r["flood_over_log2_n"] == r["flood_over_log2_n"]
            ),
        },
        notes=(
            "The overlay replaces PDGR's uniform sampling with addrman "
            "gossip + DNS seeds and instant regeneration with next-tick "
            "re-dialling; matching behaviour supports the paper's claim "
            "that PDGR abstracts Bitcoin-like overlays."
        ),
        elapsed_seconds=watch.elapsed,
    )
