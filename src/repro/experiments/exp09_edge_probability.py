"""EXP-09 — request-destination probabilities under regeneration.

Reproduces Lemma 3.14 (SDGR) and Lemma 4.15 (PDGR): the probability that a
fixed request of an age-``k+1`` node currently points at a *specific older*
node is at most ``(1/(n−1))(1+1/(n−1))^k`` (streaming) — i.e. slightly
inflated over uniform, by at most a factor ``e`` — and the Poisson
analogue ``(1/0.8n)(1+i/1.7n)``.
"""

from __future__ import annotations

from repro.analysis.edge_prob import (
    poisson_slot_destination_frequency,
    streaming_slot_destination_frequency,
)
from repro.experiments.common import ExperimentResult, Stopwatch
from repro.experiments.registry import register
from repro.scenario import ScenarioSpec, simulate
from repro.util.rng import derive_seed

# The streaming rows use the exact standalone request simulator (no
# driver); only the PDGR snapshot rows build a network.
PDGR_SPEC = ScenarioSpec(churn="poisson", policy="regen", d=8)

COLUMNS = [
    "model",
    "n",
    "owner_age",
    "empirical_per_pair",
    "paper_bound",
    "uniform_1_over_n",
    "within_bound",
]


@register(
    "EXP-09",
    "Edge-destination probabilities under regeneration",
    "Lemma 3.14 (SDGR), Lemma 4.15 (PDGR)",
)
def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    if quick:
        n, trials = 60, 30_000
        owner_ages = [5, 20, 40]
        pdgr_n = 300
    else:
        n, trials = 120, 120_000
        owner_ages = [5, 20, 40, 80, 110]
        pdgr_n = 800

    rows: list[dict] = []
    with Stopwatch() as watch:
        for owner_rounds in owner_ages:
            target_age = min(n - 2, owner_rounds + (n - owner_rounds) // 2)
            freq = streaming_slot_destination_frequency(
                n=n,
                owner_rounds=owner_rounds,
                target_age=target_age,
                trials=trials,
                seed=derive_seed(seed, f"exp09-owner-{owner_rounds}", 0),
            )
            rows.append(
                {
                    "model": "SDGR (exact mini-sim)",
                    "n": n,
                    "owner_age": owner_rounds,
                    "empirical_per_pair": freq.empirical,
                    "paper_bound": freq.bound,
                    "uniform_1_over_n": 1.0 / (n - 1),
                    "within_bound": freq.within_bound,
                }
            )

        sim = simulate(
            PDGR_SPEC.with_(n=pdgr_n),
            seed=derive_seed(seed, "exp09-pdgr", 0),
        )
        buckets = poisson_slot_destination_frequency(sim.snapshot(), n=float(pdgr_n))
        for bucket in buckets:
            if bucket.num_owners < 5:
                continue
            # Wider slack for sparsely populated (oldest) buckets, where
            # the per-pair estimate averages over few owners.  Beyond age
            # ≈ 2.5n the snapshot estimator itself is biased (it
            # conditions on the *target* having survived to the snapshot,
            # which Lemma 4.15's a-priori bound does not), so those
            # buckets are reported but not scored.
            if bucket.age_high > 2.5 * pdgr_n:
                within = None
            elif bucket.num_owners >= 20:
                within = bucket.per_pair_frequency <= bucket.bound_at_bucket * 1.5
            else:
                within = bucket.per_pair_frequency <= bucket.bound_at_bucket * 2.5
            rows.append(
                {
                    "model": "PDGR (snapshot)",
                    "n": pdgr_n,
                    "owner_age": round(bucket.age_high, 1),
                    "empirical_per_pair": bucket.per_pair_frequency,
                    "paper_bound": bucket.bound_at_bucket,
                    "uniform_1_over_n": 1.0 / pdgr_n,
                    "within_bound": within,
                }
            )

        streaming_rows = [r for r in rows if "SDGR" in r["model"]]
        monotone = all(
            a["empirical_per_pair"] <= b["empirical_per_pair"] * 1.25
            for a, b in zip(streaming_rows, streaming_rows[1:])
        )

    return ExperimentResult(
        experiment_id="EXP-09",
        title="Edge-destination probabilities under regeneration",
        paper_reference="Lemma 3.14 (SDGR), Lemma 4.15 (PDGR)",
        columns=COLUMNS,
        rows=rows,
        verdict={
            "all_within_bounds": all(
                r["within_bound"]
                for r in rows
                if r["within_bound"] is not None
            ),
            "frequency_increases_with_owner_age": monotone,
            # Streaming: (1+1/(n−1))^k ≤ e, so inflation over uniform is
            # capped by e.  Poisson: the bound grows with the owner's age
            # (old nodes genuinely exceed e — the ω(1/n) effect of §4.3).
            "max_inflation_streaming": max(
                r["empirical_per_pair"] / r["uniform_1_over_n"]
                for r in rows
                if "SDGR" in r["model"]
            ),
            "streaming_inflation_cap_e": 2.718,
            "max_inflation_poisson": max(
                (
                    r["empirical_per_pair"] / r["uniform_1_over_n"]
                    for r in rows
                    if "PDGR" in r["model"]
                ),
                default=None,
            ),
        },
        notes=(
            "The streaming rows use the exact standalone request simulator "
            "(the deterministic age structure makes the rest of the network "
            "irrelevant); the PDGR rows aggregate per-pair frequencies from "
            "a live snapshot, bucketed by owner age."
        ),
        elapsed_seconds=watch.elapsed,
    )
