"""EXP-08 — Poisson churn properties.

Reproduces the preliminary lemmas of §4.1 on the simulated jump chain:

* Lemma 4.4 — |N_t| concentrates in [0.9n, 1.1n] for t ≥ 3n;
* Lemma 4.6/4.7 — birth/death jump probabilities lie in [0.47, 0.53] at
  stationarity, and a fixed node dies next round with probability in
  [1/(2.2n), 1/(1.8n)];
* Lemma 4.8 — no alive node is older than 7 n log n rounds;
* the exact M/M/∞ mean curve E|N_t| = n(1 − e^{−t/n}) from a cold start.
"""

from __future__ import annotations

import math

from repro.experiments.common import ExperimentResult, Stopwatch
from repro.experiments.registry import register
from repro.scenario import ScenarioSpec, simulate
from repro.sweep import SweepSpec, measurement, run_sweep
from repro.theory.churn import (
    expected_size_at,
    jump_probability_bounds,
    lifetime_horizon_rounds,
    size_concentration_bounds,
)
from repro.util.rng import SeedLike, derive_seed
from repro.util.stats import fraction_true

COLUMNS = ["property", "n", "measured", "paper_low", "paper_high", "within"]

PDG_SPEC = ScenarioSpec(churn="poisson", policy="none", d=1)


def _pdg(n: int, child, warm_time: float | None = None):
    """A scenario-built PDG driver (the lemmas probe it event by event)."""
    spec = PDG_SPEC.with_(n=n)
    if warm_time is not None:
        spec = spec.with_(churn_params={"warm_time": warm_time})
    return simulate(spec, seed=child).network


@measurement("exp08-size-concentration")
def size_concentration(
    spec: ScenarioSpec, seed: SeedLike, probes: int
) -> list[bool]:
    """Lemma 4.4 cell: probe |N_t| every n/10 time units at stationarity."""
    n = int(spec.n)
    conc = size_concentration_bounds(n)
    net = simulate(spec, seed=seed).network
    flags: list[bool] = []
    for _ in range(probes):
        net.advance_to_time(net.now + n / 10.0)
        flags.append(bool(conc.low <= net.num_alive() <= conc.high))
    return flags


@register(
    "EXP-08",
    "Poisson churn: concentration, jump probabilities, lifetimes",
    "Lemmas 4.4, 4.6, 4.7, 4.8",
)
def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    if quick:
        n, probes, trials = 500, 40, 2
    else:
        n, probes, trials = 2000, 100, 4

    rows: list[dict] = []
    with Stopwatch() as watch:
        # --- Lemma 4.4: size concentration across probe times ≥ 3n,
        #     declared as a replica sweep (one cell per trial network).
        conc = size_concentration_bounds(n)
        concentration_sweep = SweepSpec(
            base=PDG_SPEC.with_(n=n),
            replicas=trials,
            seed=seed,
            stream="exp08-concentration",
            measure="exp08-size-concentration",
            measure_params={"probes": probes},
        )
        in_window_flags = [
            flag
            for flags in run_sweep(concentration_sweep).values()
            for flag in flags
        ]
        concentration = fraction_true(in_window_flags)
        rows.append(
            {
                "property": "P(|N_t| in [0.9n, 1.1n])",
                "n": n,
                "measured": concentration,
                "paper_low": 1.0 - conc.failure_probability,
                "paper_high": 1.0,
                "within": concentration >= 0.95,
            }
        )

        # --- Lemma 4.7: empirical jump probabilities at stationarity.
        bounds = jump_probability_bounds()
        net = _pdg(n, derive_seed(seed, "exp08-jump", 0))
        births = 0
        events = 4000 if quick else 20000
        for record in net.advance_rounds_jump(events):
            births += record.is_birth
        birth_fraction = births / events
        rows.append(
            {
                "property": "P(next event is birth)",
                "n": n,
                "measured": birth_fraction,
                "paper_low": bounds.event_low,
                "paper_high": bounds.event_high,
                "within": bounds.event_low <= birth_fraction <= bounds.event_high,
            }
        )

        # --- Lemma 4.7: fixed-node death probability per round.  Unbiased
        # estimator: deaths divided by exposure (alive-node-rounds) —
        # measuring realised lifetimes instead would be censoring-biased.
        net = _pdg(n, derive_seed(seed, "exp08-death", 0))
        deaths = 0
        exposure = 0
        for _ in range(events):
            exposure += net.num_alive()
            record = net.advance_one_event()
            deaths += record.is_death
        implied_death_probability = deaths / exposure
        rows.append(
            {
                "property": "P(fixed node dies next round)",
                "n": n,
                "measured": implied_death_probability,
                "paper_low": bounds.fixed_death_low_factor / n,
                "paper_high": bounds.fixed_death_high_factor / n,
                "within": bounds.fixed_death_low_factor / n
                <= implied_death_probability
                <= bounds.fixed_death_high_factor / n,
            }
        )

        # --- Lemma 4.8: oldest node age (in rounds ≈ 2 × time units).
        net = _pdg(n, derive_seed(seed, "exp08-age", 0), warm_time=8.0 * n)
        snap = net.snapshot()
        oldest_rounds = 2.0 * max(snap.age(u) for u in snap.nodes)
        horizon = lifetime_horizon_rounds(n)
        rows.append(
            {
                "property": "oldest node age (rounds)",
                "n": n,
                "measured": oldest_rounds,
                "paper_low": 0.0,
                "paper_high": horizon,
                "within": oldest_rounds <= horizon,
            }
        )

        # --- cold-start growth curve vs the exact mean.
        curve_ok = True
        net = _pdg(n, derive_seed(seed, "exp08-growth", 0), warm_time=0)
        for t in [n / 4, n / 2, n, 2 * n]:
            net.advance_to_time(t)
            expected = expected_size_at(t, n)
            if abs(net.num_alive() - expected) > 5 * math.sqrt(expected):
                curve_ok = False
            rows.append(
                {
                    "property": f"E|N_t| at t={t:g}",
                    "n": n,
                    "measured": net.num_alive(),
                    "paper_low": expected - 5 * math.sqrt(expected),
                    "paper_high": expected + 5 * math.sqrt(expected),
                    "within": abs(net.num_alive() - expected)
                    <= 5 * math.sqrt(expected),
                }
            )

    return ExperimentResult(
        experiment_id="EXP-08",
        title="Poisson churn properties",
        paper_reference="Lemmas 4.4, 4.6, 4.7, 4.8",
        columns=COLUMNS,
        rows=rows,
        verdict={
            "all_within_paper_windows": all(r["within"] for r in rows),
            "size_concentration_rate": concentration,
            "cold_start_curve_matches_mm_infinity": curve_ok,
        },
        elapsed_seconds=watch.elapsed,
    )
