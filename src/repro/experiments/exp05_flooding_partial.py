"""EXP-05 — flooding informs a 1 − exp(−Ω(d)) fraction in O(log n) rounds.

Reproduces Theorem 3.8 (SDG) and Theorem 4.13 (PDG) with two sweeps:

* **d-sweep** at fixed n: the uninformed fraction after the τ(n, d)
  horizon should decay exponentially in d (fitted rate < 0), and the
  informed fraction should beat the paper's ``1 − e^{−d/10}`` /
  ``1 − e^{−d/20}`` guarantee at the paper's probability;
* **n-sweep** at fixed d: the number of rounds to reach a fixed 90%
  coverage should grow like log n (flat ``rounds / log n`` ratio).
"""

from __future__ import annotations

import math

from repro.experiments.common import ExperimentResult, Stopwatch
from repro.experiments.registry import register
from repro.scenario import ScenarioSpec
from repro.sweep import SweepSpec, fraction_at_round, run_sweep
from repro.theory.flooding import (
    informed_fraction_bound_poisson,
    informed_fraction_bound_streaming,
    partial_flooding_rounds,
)
from repro.util.stats import (
    exponential_decay_fit,
    log_scaling_fit,
    mean_confidence_interval,
)

COLUMNS = [
    "sweep",
    "model",
    "n",
    "d",
    "horizon",
    "informed_fraction",
    "paper_guarantee",
    "meets_guarantee",
]


def _rounds_to_fraction(fractions: list[float], fraction: float) -> int | None:
    for index, value in enumerate(fractions):
        if value >= fraction:
            return index
    return None


SDG_SPEC = ScenarioSpec(churn="streaming", policy="none", protocol="discrete")
PDG_SPEC = ScenarioSpec(churn="poisson", policy="none", protocol="discretized")


def _d_axis_sweep(
    base: ScenarioSpec, n: int, ds: list[int], trials: int, seed: int,
    stream: str,
) -> SweepSpec:
    """The d sweep at fixed n — max_rounds tracks the τ(n, d) horizon."""
    return SweepSpec(
        base=base.with_(n=n),
        axes=[
            (
                "scenario",
                tuple(
                    {
                        "d": d,
                        "protocol_params": {
                            "max_rounds": partial_flooding_rounds(n, d)
                        },
                    }
                    for d in ds
                ),
            )
        ],
        replicas=trials,
        seed=seed,
        stream=stream,
        measure="flood_stats",
    )


@register(
    "EXP-05",
    "Flooding informs 1−exp(−Ω(d)) of nodes in O(log n) rounds",
    "Table 1 row 4; Theorem 3.8 (SDG), Theorem 4.13 (PDG)",
)
def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    if quick:
        n_fixed, trials = 400, 3
        d_guarantee = [4, 8, 12, 16]
        d_decay, decay_trials = [2, 3, 4, 5], 5
        n_sweep = [200, 400, 800]
        d_fixed = 8
    else:
        n_fixed, trials = 1000, 6
        d_guarantee = [4, 8, 12, 16, 20, 24]
        d_decay, decay_trials = [2, 3, 4, 5, 6], 10
        n_sweep = [250, 500, 1000, 2000, 4000]
        d_fixed = 8

    # Declared sweeps.  The guarantee grids run one stream per model; the
    # decay grids *share* a stream, so SDG and PDG cell i draw the same
    # child seed — preserving the paired-trial structure of the original
    # loop (one child seeding both models).
    guarantee_sweeps = [
        (
            "SDG",
            informed_fraction_bound_streaming,
            _d_axis_sweep(
                SDG_SPEC.with_(horizon=n_fixed), n_fixed, d_guarantee,
                trials, seed, "exp05-sdg-guarantee",
            ),
        ),
        (
            "PDG",
            informed_fraction_bound_poisson,
            _d_axis_sweep(
                PDG_SPEC, n_fixed, d_guarantee, trials, seed,
                "exp05-pdg-guarantee",
            ),
        ),
    ]
    decay_sweeps = {
        "SDG": _d_axis_sweep(
            SDG_SPEC.with_(horizon=n_fixed), n_fixed, d_decay, decay_trials,
            seed, "exp05-decay",
        ),
        "PDG": _d_axis_sweep(
            PDG_SPEC, n_fixed, d_decay, decay_trials, seed, "exp05-decay",
        ),
    }
    n_sweep_spec = SweepSpec(
        base=SDG_SPEC,
        axes=[
            (
                "scenario",
                tuple(
                    {
                        "n": n,
                        "horizon": n,
                        "d": d_fixed,
                        "protocol_params": {
                            "max_rounds": 6 * partial_flooding_rounds(n, d_fixed)
                        },
                    }
                    for n in n_sweep
                ),
            )
        ],
        replicas=trials,
        seed=seed,
        stream="exp05-n",
        measure="flood_stats",
    )

    rows: list[dict] = []
    with Stopwatch() as watch:
        # --- d-sweep (guarantee): informed fraction at the horizon beats
        #     the paper's 1 − e^{−d/10} (resp. −d/20) bound.
        for model, bound, sweep in guarantee_sweeps:
            groups = run_sweep(sweep).value_groups()
            for d, floods in zip(d_guarantee, groups):
                horizon = partial_flooding_rounds(n_fixed, d)
                ci = mean_confidence_interval(
                    [fraction_at_round(flood, horizon) for flood in floods]
                )
                guarantee = bound(d)
                rows.append(
                    {
                        "sweep": "d",
                        "model": model,
                        "n": n_fixed,
                        "d": d,
                        "horizon": horizon,
                        "informed_fraction": ci.mean,
                        "paper_guarantee": guarantee,
                        "meets_guarantee": ci.mean >= guarantee - 0.02,
                    }
                )

        # --- d-sweep (decay): the *unreachable* residual (uninformed nodes
        #     minus the O(1) just-arrived backlog, which is d-independent)
        #     decays exponentially in d.  This isolates the exp(−Ω(d))
        #     shape from the 1/n floor caused by the perpetual newborn.
        decay_groups = {
            model: run_sweep(sweep).value_groups()
            for model, sweep in decay_sweeps.items()
        }
        sdg_residuals: list[float] = []
        pdg_residuals: list[float] = []
        for point, d in enumerate(d_decay):
            horizon = partial_flooding_rounds(n_fixed, d)
            means: dict[str, float] = {}
            for model in ("SDG", "PDG"):
                residuals = []
                for flood in decay_groups[model][point]:
                    backlog_free = max(
                        0,
                        flood["final_network_size"]
                        - flood["final_informed"]
                        - 2,
                    )
                    residuals.append(
                        backlog_free / flood["final_network_size"]
                    )
                means[model] = mean_confidence_interval(residuals).mean
            sdg_residuals.append(max(means["SDG"], 0.5 / n_fixed))
            pdg_residuals.append(max(means["PDG"], 0.5 / n_fixed))
            rows.append(
                {
                    "sweep": "decay",
                    "model": "SDG/PDG",
                    "n": n_fixed,
                    "d": d,
                    "horizon": horizon,
                    "informed_fraction": 1.0 - means["SDG"],
                    "paper_guarantee": None,
                    "meets_guarantee": True,
                }
            )

        # --- n-sweep: rounds to reach 90% coverage vs log n.
        rounds_to_90: list[float] = []
        for n, floods in zip(n_sweep, run_sweep(n_sweep_spec).value_groups()):
            times = [
                reach
                for flood in floods
                if (reach := _rounds_to_fraction(flood["fractions"], 0.9))
                is not None
            ]
            mean_rounds = (
                mean_confidence_interval(times).mean if times else float("nan")
            )
            rounds_to_90.append(mean_rounds)
            rows.append(
                {
                    "sweep": "n",
                    "model": "SDG",
                    "n": n,
                    "d": d_fixed,
                    "horizon": None,
                    "informed_fraction": 0.9,
                    "paper_guarantee": None,
                    "meets_guarantee": bool(times),
                }
            )
            rows[-1]["rounds_to_90pct"] = mean_rounds
            rows[-1]["rounds_over_log_n"] = (
                mean_rounds / math.log(n) if times else None
            )

        sdg_fit = exponential_decay_fit(d_decay, sdg_residuals)
        pdg_fit = exponential_decay_fit(d_decay, pdg_residuals)
        usable = [
            (n, t) for n, t in zip(n_sweep, rounds_to_90) if t == t
        ]
        log_fit = log_scaling_fit([n for n, _ in usable], [t for _, t in usable])

    d_rows = [r for r in rows if r["sweep"] == "d"]
    return ExperimentResult(
        experiment_id="EXP-05",
        title="Flooding informs 1−exp(−Ω(d)) of nodes in O(log n) rounds",
        paper_reference="Theorem 3.8 (SDG), Theorem 4.13 (PDG)",
        columns=COLUMNS + ["rounds_to_90pct", "rounds_over_log_n"],
        rows=rows,
        verdict={
            "guarantees_met": all(r["meets_guarantee"] for r in d_rows),
            "sdg_uninformed_decay_rate": sdg_fit.slope,
            "pdg_uninformed_decay_rate": pdg_fit.slope,
            "uninformed_decays_exponentially": sdg_fit.slope < -0.3
            and pdg_fit.slope < -0.3,
            "rounds_vs_log_n_slope": log_fit.slope,
            "rounds_vs_log_n_r2": log_fit.r_squared,
            "time_scales_logarithmically": log_fit.r_squared > 0.6,
        },
        notes=(
            "The paper's constants (d ≥ 200 / d ≥ 1152) are union-bound "
            "artifacts; the exponential-in-d shape emerges already at "
            "d ≈ 4–24, which is what is swept here."
        ),
        elapsed_seconds=watch.elapsed,
    )
