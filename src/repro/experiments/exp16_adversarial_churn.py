"""EXP-16 (extension) — adversarial vs oblivious churn.

The paper assumes *oblivious* churn (age- or uniformly-chosen victims) and
contrasts itself with the adversarial-churn literature ([2, 4]) where
protocols must survive targeted deletions.  This experiment keeps the
paper's regeneration dynamics and churn **rate** but lets the victim be
chosen by topology-aware strategies: does SDGR's expander property
survive hub removal?

Expected outcome (and the measured one): yes — regeneration re-randomises
the damaged slots immediately, so even always killing the biggest hub
leaves expansion and O(log n) flooding intact, while *without*
regeneration hub removal degrades the giant component faster than
oblivious churn does.
"""

from __future__ import annotations

import math

from repro.analysis.components import giant_component_fraction
from repro.analysis.distances import giant_component_diameter
from repro.analysis.expansion import adversarial_expansion_upper_bound
from repro.experiments.common import ExperimentResult, Stopwatch
from repro.experiments.registry import register
from repro.scenario import ScenarioSpec, simulate
from repro.theory.expansion import EXPANSION_THRESHOLD
from repro.util.rng import derive_seeds
from repro.util.stats import mean_confidence_interval

COLUMNS = [
    "strategy",
    "edge_policy",
    "n",
    "d",
    "worst_expansion",
    "giant_fraction",
    "diameter",
    "flood_rounds",
]


@register(
    "EXP-16",
    "Extension: adversarial victim selection vs oblivious churn",
    "§2 positioning vs adversarial-churn work [2, 4]",
)
def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    if quick:
        n, trials = 250, 2
    else:
        n, trials = 800, 4
    # Regeneration is tested at the paper's flooding degree; the no-regen
    # control runs at d=3, where isolation is common enough that targeted
    # deletions have something to amplify.
    regen_d, no_regen_d = 8, 3

    base = ScenarioSpec(
        churn="adversarial",
        n=n,
        horizon=n,
        protocol="discrete",
        protocol_params={"max_rounds": 40 * int(math.log2(n))},
    )

    rows: list[dict] = []
    with Stopwatch() as watch:
        for strategy in ["oldest", "random", "max_degree", "min_degree"]:
            for policy_name, policy, d in [
                ("regen", "regen", regen_d),
                ("no-regen", "none", no_regen_d),
            ]:
                spec = base.with_(
                    policy=policy, d=d, churn_params={"strategy": strategy}
                )
                expansions, giants, diameters, floods = [], [], [], []
                for child in derive_seeds(seed, "exp16-strategies", trials):
                    sim = simulate(spec, seed=child)
                    snap = sim.snapshot()
                    probe = adversarial_expansion_upper_bound(snap, seed=child)
                    expansions.append(probe.min_ratio)
                    giants.append(giant_component_fraction(snap))
                    diameters.append(giant_component_diameter(snap, seed=child))
                    flood = sim.flood()
                    floods.append(
                        flood.completion_round
                        if flood.completed and flood.completion_round is not None
                        else float("nan")
                    )
                finite = [f for f in floods if f == f]
                rows.append(
                    {
                        "strategy": strategy,
                        "edge_policy": policy_name,
                        "n": n,
                        "d": d,
                        "worst_expansion": min(expansions),
                        "giant_fraction": mean_confidence_interval(giants).mean,
                        "diameter": max(diameters),
                        "flood_rounds": (
                            mean_confidence_interval(finite).mean
                            if finite
                            else None
                        ),
                    }
                )

    regen_rows = [r for r in rows if r["edge_policy"] == "regen"]
    hub_no_regen = next(
        r
        for r in rows
        if r["strategy"] == "max_degree" and r["edge_policy"] == "no-regen"
    )
    oblivious_no_regen = next(
        r
        for r in rows
        if r["strategy"] == "oldest" and r["edge_policy"] == "no-regen"
    )
    return ExperimentResult(
        experiment_id="EXP-16",
        title="Extension: adversarial victim selection",
        paper_reference="§2 vs adversarial-churn work",
        columns=COLUMNS,
        rows=rows,
        verdict={
            "regen_expands_under_every_strategy": all(
                r["worst_expansion"] > EXPANSION_THRESHOLD for r in regen_rows
            ),
            "regen_floods_fast_under_every_strategy": all(
                r["flood_rounds"] is not None
                and r["flood_rounds"] <= 6 * math.log2(n)
                for r in regen_rows
            ),
            "hub_removal_hurts_no_regen": hub_no_regen["giant_fraction"]
            < oblivious_no_regen["giant_fraction"] - 0.1,
            "giant_fraction_hub_no_regen": hub_no_regen["giant_fraction"],
            "giant_fraction_oldest_no_regen": oblivious_no_regen[
                "giant_fraction"
            ],
        },
        notes=(
            "Extension beyond the paper: regeneration makes the expander "
            "property robust even to topology-aware victim selection at "
            "the paper's churn rate — the re-sampled slots immediately "
            "re-randomise whatever structure the adversary destroys."
        ),
        elapsed_seconds=watch.elapsed,
    )
