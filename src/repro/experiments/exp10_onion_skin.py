"""EXP-10 — the onion-skin processes of the flooding proofs.

Reproduces Claims 3.10/3.11 and Lemma 3.9 (streaming) plus Lemma 7.8
(Poisson): the proof's constructive process grows its informed layers by a
factor ≥ d/20 (streaming) / d/48 (Poisson) per step, reaches a constant
fraction of the network in O(log n / log d) phases, and succeeds with
probability ≥ 1 − 4e^{−d/100} (resp. 1 − 2e^{−d/576}).

This is the one experiment that builds no dynamic network: the onion-skin
processes are standalone proof artifacts (see :mod:`repro.onion`), so
there is nothing for a :class:`~repro.scenario.spec.ScenarioSpec` to
declare — every driver-based experiment goes through the scenario layer.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, Stopwatch
from repro.experiments.registry import register
from repro.onion import run_poisson_onion_skin, run_streaming_onion_skin
from repro.theory.onion import (
    claim_311_lower_bound,
    infinite_product_success_probability,
    onion_growth_factor_poisson,
    onion_growth_factor_streaming,
)
from repro.util.rng import derive_seeds
from repro.util.stats import fraction_true

COLUMNS = [
    "process",
    "n",
    "d",
    "trials",
    "success_rate",
    "paper_bound",
    "median_early_growth",
    "claimed_growth",
]


def _early_growth(factors: list[float]) -> float:
    """Median growth over the pre-saturation steps (first two ratios)."""
    head = [f for f in factors[:2] if f > 0]
    if not head:
        return float("nan")
    head.sort()
    return head[len(head) // 2]


@register(
    "EXP-10",
    "Onion-skin process growth and success probability",
    "Claims 3.10/3.11, Lemma 3.9 (streaming); Lemma 7.8 (Poisson)",
)
def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    if quick:
        n, trials = 3000, 20
        streaming_d, poisson_d = 200, 240
    else:
        n, trials = 10_000, 30
        streaming_d, poisson_d = 200, 1152

    rows: list[dict] = []
    with Stopwatch() as watch:
        # Streaming process at the paper's d ≥ 200.
        successes, growths = [], []
        for child in derive_seeds(seed, "exp10-onion", trials):
            res = run_streaming_onion_skin(n=n, d=streaming_d, seed=child)
            successes.append(res.reached_target)
            growths.append(_early_growth(res.layer_growth_factors()))
        success_rate = fraction_true(successes)
        growths = [g for g in growths if g == g]
        growths.sort()
        median_growth = growths[len(growths) // 2] if growths else float("nan")
        rows.append(
            {
                "process": "streaming (§3.1.2)",
                "n": n,
                "d": streaming_d,
                "trials": trials,
                "success_rate": success_rate,
                "paper_bound": claim_311_lower_bound(streaming_d),
                "median_early_growth": median_growth,
                "claimed_growth": onion_growth_factor_streaming(streaming_d),
            }
        )

        # Poisson (extended) process.
        successes, growths = [], []
        for child in derive_seeds(seed, "exp10-skin", trials):
            res = run_poisson_onion_skin(n=n, d=poisson_d, seed=child)
            successes.append(res.reached_target)
            sequence = [1] + res.old_layers[:1] + res.young_layers[:1]
            ratios = [
                b / a for a, b in zip(sequence, sequence[1:]) if a > 0 and b > 0
            ]
            growths.append(ratios[0] if ratios else float("nan"))
        p_success = fraction_true(successes)
        growths = [g for g in growths if g == g]
        growths.sort()
        p_growth = growths[len(growths) // 2] if growths else float("nan")
        poisson_paper = max(0.0, 1.0 - 2.0 * 2.718 ** (-poisson_d / 576.0))
        rows.append(
            {
                "process": "Poisson extended (§7.2.4)",
                "n": n,
                "d": poisson_d,
                "trials": trials,
                "success_rate": p_success,
                "paper_bound": poisson_paper,
                "median_early_growth": p_growth,
                "claimed_growth": onion_growth_factor_poisson(poisson_d),
            }
        )

        product = infinite_product_success_probability(streaming_d)

    return ExperimentResult(
        experiment_id="EXP-10",
        title="Onion-skin process growth and success probability",
        paper_reference="Claims 3.10/3.11, Lemmas 3.9/7.8",
        columns=COLUMNS,
        rows=rows,
        verdict={
            "success_rates_meet_paper_bounds": all(
                r["success_rate"] >= r["paper_bound"] - 0.05 for r in rows
            ),
            "growth_meets_claims": all(
                r["median_early_growth"] >= r["claimed_growth"]
                for r in rows
                if r["median_early_growth"] == r["median_early_growth"]
            ),
            "claim_311_infinite_product": product,
            "claim_311_closed_form": claim_311_lower_bound(streaming_d),
        },
        notes=(
            "Growth factors are measured on pre-saturation layers only "
            "(once a layer holds a constant fraction of Y or O, growth "
            "saturates by construction).  Quick mode scales the Poisson d "
            "down from the paper's 1152 (shape is identical)."
        ),
        elapsed_seconds=watch.elapsed,
    )
