"""Experiment registry.

Every experiment module registers a runner with :func:`register`; the CLI
and the benchmark harness look experiments up by id.  Runners have the
uniform signature ``run(quick: bool = True, seed: int = 0) ->
ExperimentResult``: *quick* selects CI-scale parameters, full mode uses the
EXPERIMENTS.md configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

from pathlib import Path

from repro.core.backend import use_backend
from repro.errors import ExperimentError
from repro.experiments.common import ExperimentResult
from repro.sweep import use_sweep_options


class ExperimentRunner(Protocol):
    def __call__(self, quick: bool = True, seed: int = 0) -> ExperimentResult: ...


@dataclass(frozen=True)
class Experiment:
    """A registered experiment."""

    experiment_id: str
    title: str
    paper_reference: str
    runner: ExperimentRunner


_REGISTRY: dict[str, Experiment] = {}


def register(
    experiment_id: str, title: str, paper_reference: str
) -> Callable[[ExperimentRunner], ExperimentRunner]:
    """Decorator registering *runner* under *experiment_id*."""

    def decorator(runner: ExperimentRunner) -> ExperimentRunner:
        if experiment_id in _REGISTRY:
            raise ExperimentError(f"duplicate experiment id {experiment_id}")
        _REGISTRY[experiment_id] = Experiment(
            experiment_id=experiment_id,
            title=title,
            paper_reference=paper_reference,
            runner=runner,
        )
        return runner

    return decorator


def get_experiment(experiment_id: str) -> Experiment:
    """Look up one experiment (raises ExperimentError if unknown)."""
    _ensure_loaded()
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None


def all_experiments() -> list[Experiment]:
    """All registered experiments, sorted by id."""
    _ensure_loaded()
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def run_experiment(
    experiment_id: str,
    quick: bool = True,
    seed: int = 0,
    backend: str | None = None,
    jobs: int | None = None,
    store: str | Path | None = None,
    resume: bool | None = None,
    checkpoint_every: int | None = None,
    checkpoint_dir: str | Path | None = None,
) -> ExperimentResult:
    """Run one experiment by id.

    *backend* overrides the topology backend for every network the runner
    builds (via :func:`repro.core.backend.use_backend`, so experiment
    signatures stay unchanged); ``None`` keeps the process default.
    *jobs*, *store* and *resume* configure the ambient sweep options the
    same way (:func:`repro.sweep.use_sweep_options`): every replication
    sweep the runner declares executes on *jobs* worker processes
    against the content-addressed result store at *store*, serving warm
    cells from it when *resume* is set.  *checkpoint_every* and
    *checkpoint_dir* set the ambient service options
    (:func:`repro.service.use_service_options`), so every scenario
    session the runner builds dumps resumable checkpoints at that
    cadence.
    """
    from repro.service import use_service_options

    with use_backend(backend), use_sweep_options(
        jobs=jobs, store=store, resume=resume
    ), use_service_options(
        checkpoint_every=checkpoint_every, checkpoint_dir=checkpoint_dir
    ):
        return get_experiment(experiment_id).runner(quick=quick, seed=seed)


def _ensure_loaded() -> None:
    """Import every experiment module so registrations happen."""
    from repro.experiments import (  # noqa: F401
        exp01_isolated,
        exp02_large_set_expansion,
        exp03_expander_regeneration,
        exp04_flooding_failure,
        exp05_flooding_partial,
        exp06_flooding_complete,
        exp07_degrees,
        exp08_poisson_churn,
        exp09_edge_probability,
        exp10_onion_skin,
        exp11_static_baseline,
        exp12_table1,
        exp13_protocol_baselines,
        exp14_p2p_overlay,
        exp15_bounded_degree,
        exp16_adversarial_churn,
        exp17_lifetime_robustness,
    )
