"""EXP-17 (extension) — robustness to the lifetime distribution.

The paper's intro claims its qualitative findings "are robust to
different modelling choices" and models lifetimes as exponential; real
P2P session lengths are heavy-tailed.  This experiment re-runs the
regeneration dichotomy under four lifetime laws with the *same mean*
(hence the same churn rate, by Little's law):

* exponential (the paper's Definition 4.1),
* Weibull shape 0.5 (stretched-exponential tail, many infant deaths),
* Pareto α = 1.5 (power-law tail),
* deterministic (the streaming model's continuous cousin),

measuring the isolated fraction without regeneration, completeness and
speed of flooding with regeneration, and flooding under 30 % message
loss.  The paper's dichotomy should survive every law.
"""

from __future__ import annotations

import math

from repro.analysis.isolated import isolated_fraction
from repro.experiments.common import ExperimentResult, Stopwatch
from repro.experiments.registry import register
from repro.scenario import ScenarioSpec, simulate
from repro.sweep import SweepSpec, measurement, run_sweep
from repro.util.rng import SeedLike
from repro.util.stats import mean_confidence_interval

COLUMNS = [
    "lifetime_law",
    "mean_size",
    "isolated_fraction_no_regen",
    "flood_completed",
    "flood_rounds",
    "lossy_flood_rounds",
]

#: label → the generalized driver's lifetime churn parameters.
LAWS = [
    ("exponential (paper)", {"lifetime": "exponential"}),
    ("Weibull k=0.5", {"lifetime": "weibull", "lifetime_params": {"shape": 0.5}}),
    ("Pareto α=1.5", {"lifetime": "pareto", "lifetime_params": {"alpha": 1.5}}),
    ("deterministic", {"lifetime": "fixed"}),
]


@measurement("exp17-law-cell")
def law_cell(
    spec: ScenarioSpec, seed: SeedLike, iso_d: int, flood_d: int
) -> dict:
    """One lifetime-law cell: the same child seeds all three sessions
    (isolation without regeneration, flooding, lossy flooding), exactly
    as the hand-written trial loop did."""
    no_regen = simulate(spec.with_(policy="none", d=iso_d), seed=seed)
    regen = spec.with_(policy="regen", d=flood_d)
    n = spec.n

    flood = simulate(
        regen.with_(
            protocol="discretized",
            protocol_params={"max_rounds": 60 * int(math.log2(n))},
        ),
        seed=seed,
    ).flood()

    lossy = simulate(
        regen.with_(
            protocol="lossy",
            protocol_params={
                "loss": 0.3,
                "max_rounds": 80 * int(math.log2(n)),
            },
        ),
        seed=seed,
    ).flood(seed=seed)

    return {
        "alive": int(no_regen.network.num_alive()),
        "isolated_fraction": float(isolated_fraction(no_regen.snapshot())),
        "flood_completed": bool(flood.completed),
        "flood_rounds": (
            flood.completion_round
            if flood.completed and flood.completion_round is not None
            else None
        ),
        "lossy_rounds": (
            lossy.completion_round
            if lossy.completed and lossy.completion_round is not None
            else None
        ),
    }


@register(
    "EXP-17",
    "Extension: robustness to the node-lifetime distribution",
    "§1 robustness claim; §5 remarks (heavy-tailed P2P sessions)",
)
def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    if quick:
        n, d, trials = 250.0, 6, 2
    else:
        n, d, trials = 800.0, 6, 4
    # Isolation is measured at d=3, where the expected isolated fraction
    # (≈ 2.6 %) is resolvable at these sizes; flooding at d=6.
    iso_d = 3
    # Heavy-tailed laws converge to stationarity slowly (long-lived nodes
    # accumulate over many means); warm for 8 means everywhere.
    warm = 8.0 * n

    # The lifetime-law axis × `trials` seed replicas, declared as one
    # sweep; every cell runs all three sessions off its own child seed.
    sweep = SweepSpec(
        base=ScenarioSpec(churn="general", n=n),
        axes=[
            (
                "scenario",
                tuple(
                    {"churn_params": {"warm_time": warm, **law_params}}
                    for _, law_params in LAWS
                ),
            )
        ],
        replicas=trials,
        seed=seed,
        stream="exp17-laws",
        measure="exp17-law-cell",
        measure_params={"iso_d": iso_d, "flood_d": d},
    )

    rows: list[dict] = []
    with Stopwatch() as watch:
        groups = run_sweep(sweep).value_groups()
        for (label, _), cells in zip(LAWS, groups):
            rounds = [
                c["flood_rounds"] for c in cells if c["flood_rounds"] is not None
            ]
            lossy_rounds = [
                c["lossy_rounds"] for c in cells if c["lossy_rounds"] is not None
            ]
            rows.append(
                {
                    "lifetime_law": label,
                    "mean_size": mean_confidence_interval(
                        [c["alive"] for c in cells]
                    ).mean,
                    "isolated_fraction_no_regen": mean_confidence_interval(
                        [c["isolated_fraction"] for c in cells]
                    ).mean,
                    "flood_completed": all(c["flood_completed"] for c in cells),
                    "flood_rounds": (
                        mean_confidence_interval(rounds).mean if rounds else None
                    ),
                    "lossy_flood_rounds": (
                        mean_confidence_interval(lossy_rounds).mean
                        if lossy_rounds
                        else None
                    ),
                }
            )

    log2n = math.log2(n)
    return ExperimentResult(
        experiment_id="EXP-17",
        title="Extension: robustness to the node-lifetime distribution",
        paper_reference="§1 robustness claim",
        columns=COLUMNS,
        rows=rows,
        verdict={
            "regen_floods_completely_under_every_law": all(
                r["flood_completed"] for r in rows
            ),
            "flooding_stays_logarithmic": all(
                r["flood_rounds"] is not None and r["flood_rounds"] <= 6 * log2n
                for r in rows
            ),
            "no_regen_isolates_under_every_law": all(
                r["isolated_fraction_no_regen"] > 0 for r in rows
            ),
            "lossy_flooding_degrades_gracefully": all(
                r["lossy_flood_rounds"] is not None
                and r["lossy_flood_rounds"] <= 12 * log2n
                for r in rows
            ),
        },
        notes=(
            "Extension beyond the paper, testing its §1 robustness claim: "
            "the regeneration dichotomy (isolated nodes without it, "
            "complete O(log n) flooding with it) holds for heavy-tailed "
            "Weibull/Pareto and deterministic lifetimes at equal mean, and "
            "under 30% message loss.  Heavy-tailed laws reach stationary "
            "size more slowly (Little's law converges from below), so the "
            "measured mean sizes sit below λ·E[L]."
        ),
        elapsed_seconds=watch.elapsed,
    )
