"""EXP-06 — complete flooding in O(log n) with edge regeneration.

Reproduces Theorem 3.16 (SDGR) and Theorem 4.20 (PDGR): flooding informs
*every* node within O(log n) rounds w.h.p.  The n-sweep fits completion
time against log n; PDGR is measured with both the discretized (Def. 4.3)
and the asynchronous (Def. 4.2) processes.
"""

from __future__ import annotations

import math

from repro.experiments.common import ExperimentResult, Stopwatch
from repro.experiments.registry import register
from repro.scenario import ScenarioSpec, simulate
from repro.util.rng import derive_seeds
from repro.util.stats import log_scaling_fit, mean_confidence_interval

COLUMNS = [
    "model",
    "process",
    "n",
    "d",
    "completed_all_trials",
    "mean_completion_round",
    "rounds_over_log2_n",
]

SDGR_SPEC = ScenarioSpec(churn="streaming", policy="regen")
PDGR_SPEC = ScenarioSpec(churn="poisson", policy="regen")


@register(
    "EXP-06",
    "Complete flooding in O(log n) with regeneration",
    "Table 1 row 4 (right); Theorem 3.16 (SDGR), Theorem 4.20 (PDGR)",
)
def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    if quick:
        n_sweep, trials = [200, 400, 800], 3
        d_sdgr, d_pdgr = 21, 35
    else:
        n_sweep, trials = [250, 500, 1000, 2000, 4000], 5
        d_sdgr, d_pdgr = 21, 35

    rows: list[dict] = []
    with Stopwatch() as watch:
        fits: dict[str, object] = {}
        for model_name, process_name in [
            ("SDGR", "discrete"),
            ("PDGR", "discretized"),
            ("PDGR", "asynchronous"),
        ]:
            means: list[float] = []
            for n in n_sweep:
                completions: list[int] = []
                all_completed = True
                for child in derive_seeds(seed, "exp06-complete", trials):
                    if model_name == "SDGR":
                        spec = SDGR_SPEC.with_(
                            n=n,
                            d=d_sdgr,
                            horizon=n,
                            protocol="discrete",
                            protocol_params={
                                "max_rounds": 60 * int(math.log2(n))
                            },
                        )
                    elif process_name == "discretized":
                        spec = PDGR_SPEC.with_(
                            n=n,
                            d=d_pdgr,
                            protocol="discretized",
                            protocol_params={
                                "max_rounds": 60 * int(math.log2(n))
                            },
                        )
                    else:
                        spec = PDGR_SPEC.with_(
                            n=n,
                            d=d_pdgr,
                            protocol="asynchronous",
                            protocol_params={"max_time": 60.0 * math.log2(n)},
                        )
                    res = simulate(spec, seed=child).flood()
                    if res.completed and res.completion_round is not None:
                        completions.append(res.completion_round)
                    else:
                        all_completed = False
                mean_completion = (
                    mean_confidence_interval(completions).mean
                    if completions
                    else float("nan")
                )
                means.append(mean_completion)
                rows.append(
                    {
                        "model": model_name,
                        "process": process_name,
                        "n": n,
                        "d": d_sdgr if model_name == "SDGR" else d_pdgr,
                        "completed_all_trials": all_completed,
                        "mean_completion_round": mean_completion,
                        "rounds_over_log2_n": mean_completion / math.log2(n),
                    }
                )
            fit = log_scaling_fit(n_sweep, means)
            fits[f"{model_name}_{process_name}_slope_per_ln_n"] = fit.slope
            fits[f"{model_name}_{process_name}_r2"] = fit.r_squared

        ratios = [r["rounds_over_log2_n"] for r in rows]

    return ExperimentResult(
        experiment_id="EXP-06",
        title="Complete flooding in O(log n) with regeneration",
        paper_reference="Theorem 3.16 (SDGR), Theorem 4.20 (PDGR)",
        columns=COLUMNS,
        rows=rows,
        verdict={
            "all_runs_completed": all(r["completed_all_trials"] for r in rows),
            "max_rounds_over_log2_n": max(ratios),
            "ratio_stays_bounded": max(ratios) < 4.0,
            **fits,
        },
        notes=(
            "The paper's degree thresholds (d ≥ 21 streaming, d ≥ 35 "
            "Poisson) are used as-is; completion time divided by log₂ n "
            "staying flat across the sweep is the O(log n) signature."
        ),
        elapsed_seconds=watch.elapsed,
    )
