"""The extended (Poisson) onion-skin process (§7.2.4).

Differences from the streaming version, following the proof exactly:

* the population is the ``m ∈ [0.9n, 1.1n]`` nodes alive at ``t_0``;
  *young* = the younger half by rank, *old* = the older half (no
  very-old exclusion — the churn handles deaths probabilistically);
* every newly informed node independently *dies* with probability
  ``log n / n`` immediately upon being informed (steps 1.b / 2.b's
  worst-case removal), contributing nothing further;
* growth per phase is ``≥ d/48`` (Claims 7.6/7.7) and the overall
  success probability is ``≥ 1 − 2e^{−d/576} − o(1)`` (Lemma 7.8).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.util.rng import SeedLike, make_rng


@dataclass
class PoissonOnionSkinResult:
    """Trajectory of one extended onion-skin run."""

    m: int
    d: int
    target: int
    young_layers: list[int] = field(default_factory=list)
    old_layers: list[int] = field(default_factory=list)
    removed_by_death: int = 0
    reached_target: bool = False
    phases_run: int = 0

    @property
    def total_informed(self) -> int:
        return 1 + sum(self.young_layers) + sum(self.old_layers)


def run_poisson_onion_skin(
    n: int,
    d: int,
    m: int | None = None,
    target_fraction: float = 0.05,
    max_phases: int | None = None,
    seed: SeedLike = None,
) -> PoissonOnionSkinResult:
    """Run the §7.2.4 extended onion-skin process once.

    Args:
        n: the model's expected network size (sets the death probability
           ``log n / n``).
        d: request budget (even).
        m: population at ``t_0`` (defaults to ``n``; the proof allows
           ``[0.9n, 1.1n]``).
        target_fraction: stop once the informed set reaches this fraction
           of ``m`` (the proof's Lemma 7.8 targets ``m/20``).
        max_phases: phase cap; defaults to O(log n).
        seed: RNG seed.
    """
    if d < 2 or d % 2 != 0:
        raise ConfigurationError(f"d must be even and >= 2, got {d}")
    if n < 20:
        raise ConfigurationError(f"n too small, got {n}")
    if m is None:
        m = n
    rng = make_rng(seed)
    if max_phases is None:
        max_phases = max(4, int(4 * math.log(n)))
    death_probability = math.log(n) / n
    target = max(2, int(target_fraction * m))

    half = m // 2
    # Ranks 0 … m−1 by youth: 0 … half−1 young, half … m−1 old.
    num_young = half

    def is_old(node: int) -> bool:
        return node >= half

    type_b = rng.integers(0, m, size=(num_young, d // 2))
    type_a = rng.integers(0, m, size=(num_young, d // 2))

    result = PoissonOnionSkinResult(m=m, d=d, target=target)

    # Phase 0: the source's d requests, then coin-flip removals (step 2).
    source_requests = rng.integers(0, m, size=d)
    z0 = {int(w) for w in source_requests if is_old(int(w))}
    old_prev_layer = {w for w in z0 if rng.random() >= death_probability}
    result.removed_by_death += len(z0) - len(old_prev_layer)
    informed_old = set(old_prev_layer)
    informed_young: set[int] = set()
    result.old_layers.append(len(old_prev_layer))

    for _ in range(max_phases):
        result.phases_run += 1
        # Step 1.a/1.b: young nodes hitting the previous old layer, minus
        # coin-flip deaths.
        w_k = [
            i
            for i in range(num_young)
            if i not in informed_young
            and any(int(t) in old_prev_layer for t in type_b[i])
        ]
        survivors = [i for i in w_k if rng.random() >= death_probability]
        result.removed_by_death += len(w_k) - len(survivors)
        informed_young.update(survivors)
        result.young_layers.append(len(survivors))

        # Step 2.a/2.b: old nodes hit by the survivors' type-A requests,
        # minus coin-flip deaths.
        z_k: set[int] = set()
        for i in survivors:
            for t in type_a[i]:
                t = int(t)
                if is_old(t) and t not in informed_old:
                    z_k.add(t)
        new_old = {w for w in z_k if rng.random() >= death_probability}
        result.removed_by_death += len(z_k) - len(new_old)
        informed_old.update(new_old)
        result.old_layers.append(len(new_old))
        old_prev_layer = new_old

        if result.total_informed >= target:
            result.reached_target = True
            break
        if not survivors and not new_old:
            break
    return result
