"""The onion-skin processes — executable versions of the proofs' constructions.

The partial-flooding theorems (3.8 / 4.13) are proved by analysing a
restricted flooding process that builds a bipartite young/old "onion": each
phase informs a new layer of young nodes via type-B requests into the last
old layer, then a new layer of old nodes via the young layer's type-A
requests.  These modules simulate that exact stochastic process (with the
proofs' deferred-decision sampling), so Claims 3.10/3.11 and Lemma 7.8 can
be checked quantitatively: per-phase growth factors and overall success
probabilities.
"""

from repro.onion.poisson import PoissonOnionSkinResult, run_poisson_onion_skin
from repro.onion.streaming import OnionSkinResult, run_streaming_onion_skin

__all__ = [
    "OnionSkinResult",
    "PoissonOnionSkinResult",
    "run_poisson_onion_skin",
    "run_streaming_onion_skin",
]
