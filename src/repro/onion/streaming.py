"""The streaming onion-skin process (§3.1.2).

Population model (ages at the flooding start ``t_0``, following the proof):

* young ``Y``: nodes of age in ``[2, n/2)`` — the source ``s`` is young;
* old ``O``: age in ``[n/2, n − log n]``;
* very old ``Ô``: the rest — excluded (they die during the window).

Each young node owns ``d`` requests with destinations sampled uniformly
from the ``n`` current nodes (the deferred-decision simplification used by
Claim 3.10); requests ``1 … d/2`` are *type-A*, ``d/2+1 … d`` *type-B*.

Phase 0: the source's ``d`` requests land a first old layer
``O_0 = targets(s) ∩ O``.
Phase k ≥ 1: ``Y_k − Y_{k−1}`` = young nodes with a type-B request into
``O_{k−1} − O_{k−2}``; then ``O_k − O_{k−1}`` = old nodes hit by a type-A
request of ``Y_k − Y_{k−1}``.

Claim 3.10 predicts each layer grows by ``≥ d/20`` per step (w.h.p. in the
layer size); Claim 3.11 bounds the overall success probability by
``1 − 4e^{−d/100}`` for ``d ≥ 200``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.util.rng import SeedLike, make_rng


@dataclass
class OnionSkinResult:
    """Trajectory of one onion-skin run.

    ``young_layers[k]`` / ``old_layers[k]`` are the *new* nodes added in
    phase ``k`` (phase 0 adds no young nodes beyond the source).
    """

    n: int
    d: int
    target: int
    young_layers: list[int] = field(default_factory=list)
    old_layers: list[int] = field(default_factory=list)
    reached_target: bool = False
    phases_run: int = 0

    @property
    def total_young(self) -> int:
        return 1 + sum(self.young_layers)  # the source counts as young

    @property
    def total_old(self) -> int:
        return sum(self.old_layers)

    @property
    def total_informed(self) -> int:
        return self.total_young + self.total_old

    def layer_sequence(self) -> list[int]:
        """Interleaved layer sizes: source, O₀, Y₁, O₁−O₀, Y₂, …"""
        sequence = [1]
        if self.old_layers:
            sequence.append(self.old_layers[0])
        for young, old in zip(self.young_layers, self.old_layers[1:]):
            sequence.extend([young, old])
        return sequence

    def layer_growth_factors(self) -> list[float]:
        """Consecutive ratios of the interleaved layer sequence (the
        quantities Claim 3.10 lower-bounds by d/20)."""
        sequence = self.layer_sequence()
        return [
            b / a for a, b in zip(sequence, sequence[1:]) if a > 0 and b > 0
        ]


def run_streaming_onion_skin(
    n: int,
    d: int,
    target_fraction: float = 0.1,
    max_phases: int | None = None,
    seed: SeedLike = None,
) -> OnionSkinResult:
    """Run the §3.1.2 onion-skin process once.

    Args:
        n: network size (population of the process).
        d: request budget per node (must be even; the proof splits d/2+d/2).
        target_fraction: stop once ``|Y_k| + |O_k|`` reaches this fraction
            of ``n`` (the proof targets ``2n/d``, i.e. fraction ``2/d``;
            experiments typically use 0.1).
        max_phases: phase cap; defaults to a generous O(log n).
        seed: RNG seed.
    """
    if d < 2 or d % 2 != 0:
        raise ConfigurationError(f"d must be even and >= 2, got {d}")
    if n < 20:
        raise ConfigurationError(f"n too small for the age classes, got {n}")
    rng = make_rng(seed)
    if max_phases is None:
        max_phases = max(4, int(4 * math.log(n)))

    log_n = max(1, int(math.log(n)))
    half = n // 2
    # Node ids 0 … n−1 with age = id + 1 (id n−1 is the oldest).
    young_ids = np.arange(1, half)  # ages 2 … n/2 − 1 → young
    old_low, old_high = half, n - log_n  # ages n/2 … n − log n (ids inclusive)
    target = max(2, int(target_fraction * n))

    def is_old(node: int) -> bool:
        return old_low <= node <= old_high

    # Deferred decisions, sampled up front: each young node's type-A and
    # type-B request destinations (uniform over all n ids).
    num_young = len(young_ids)
    type_b = rng.integers(0, n, size=(num_young, d // 2))
    type_a = rng.integers(0, n, size=(num_young, d // 2))

    result = OnionSkinResult(n=n, d=d, target=target)

    # Phase 0: the source (a fresh young node, outside the arrays).
    source_requests = rng.integers(0, n, size=d)
    old_prev_layer = {int(w) for w in source_requests if is_old(int(w))}
    informed_old: set[int] = set(old_prev_layer)
    informed_young_idx: set[int] = set()
    result.old_layers.append(len(old_prev_layer))

    for _ in range(max_phases):
        result.phases_run += 1
        # Step 1: young nodes with a type-B request into the last old layer.
        new_young: list[int] = []
        for i in range(num_young):
            if i in informed_young_idx:
                continue
            if any(int(t) in old_prev_layer for t in type_b[i]):
                new_young.append(i)
        informed_young_idx.update(new_young)
        result.young_layers.append(len(new_young))

        # Step 2: old nodes hit by the new young layer's type-A requests.
        new_old: set[int] = set()
        for i in new_young:
            for t in type_a[i]:
                t = int(t)
                if is_old(t) and t not in informed_old:
                    new_old.add(t)
        informed_old.update(new_old)
        result.old_layers.append(len(new_old))
        old_prev_layer = new_old

        total = 1 + len(informed_young_idx) + len(informed_old)
        if total >= target:
            result.reached_target = True
            break
        if not new_young and not new_old:
            break

    return result
