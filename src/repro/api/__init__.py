"""The programmatic surface of the repro engine — no CLI attached.

Everything here is importable and callable from a script, a notebook,
or a scheduler; :mod:`repro.cli` is a thin argparse adapter over this
package and adds nothing you cannot reach from Python.  The fleet-scale
sweep lifecycle (:func:`submit_sweep` → :func:`run_worker` on N hosts →
:func:`collect`) lives in :mod:`repro.api.sweeps`; experiment execution
re-exports from the registry so ``from repro.api import run_experiment``
works symmetrically.

Single host, one call::

    from repro.api import run_fleet

    result = run_fleet(sweep, store="results", workers=4)
    groups = result.value_groups()

Many hosts, shared store::

    # host A (and B, C, ...):
    from repro.api import run_worker
    run_worker("shared/results", sweep)

    # whoever reduces:
    from repro.api import collect
    artifact = collect("shared/results", sweep, timeout=3600)
"""

from repro.api.sweeps import (
    DEFAULT_CLAIM_BATCH,
    SweepStatus,
    SweepSubmission,
    WorkerReport,
    collect,
    gc_store,
    load_submission,
    run_fleet,
    run_worker,
    submit_sweep,
    sweep_status,
)
from repro.experiments.registry import (
    all_experiments,
    get_experiment,
    run_experiment,
)

__all__ = [
    "DEFAULT_CLAIM_BATCH",
    "SweepStatus",
    "SweepSubmission",
    "WorkerReport",
    "all_experiments",
    "collect",
    "gc_store",
    "get_experiment",
    "load_submission",
    "run_experiment",
    "run_fleet",
    "run_worker",
    "submit_sweep",
    "sweep_status",
]
