"""The programmatic sweep API: submit, work, observe, reduce.

This is the engine surface of the fleet-scale sweep plane — no argparse,
no printing; the CLI (:mod:`repro.cli`) is one consumer, a notebook or a
scheduler is another.  The lifecycle:

1. :func:`submit_sweep` pins a sweep's identity (its
   :func:`~repro.sweep.artifact.sweep_key`) and records the spec
   document under ``<store>/sweeps/<key>.spec.json`` so any host that
   can reach the store can work on it knowing only the key.
2. :func:`run_worker` drains the grid: for each cell without a result it
   tries to *claim* the cell (``O_EXCL`` on ``<cell>.claim``, expired
   claims taken over — see :meth:`repro.sweep.store.ResultStore.claim`),
   executes the claimed cell with the exact engine the in-process
   runner uses (:func:`repro.sweep.runner.execute_cell`), commits via
   :meth:`~repro.sweep.store.ResultStore.put`, and releases the claim.
   N workers on N hosts need no coordination beyond the shared store.
3. :func:`sweep_status` reports progress without touching anything.
4. :func:`collect` (the *reducer*) polls until every cell has a result,
   assembles the canonical-order :class:`~repro.sweep.artifact.
   SweepResult`, and writes the sweep artifact.

:func:`run_fleet` composes all four for the single-host case: ``--jobs
N`` is literally a local fleet of N worker processes draining the same
store, which is why its artifact is byte-identical (canonical core) to
a sequential run's — there is no separate parallel code path to drift.
"""

from __future__ import annotations

import json
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path

from repro.errors import SweepError
from repro.sweep.artifact import (
    ARTIFACT_FORMAT,
    SweepResult,
    resolve_backend,
    submitted_spec_path,
    sweep_key,
)
from repro.sweep.runner import CellTask, cell_tasks, execute_cell
from repro.sweep.spec import SweepSpec
from repro.sweep.store import (
    DEFAULT_CLAIM_TTL,
    ResultStore,
    atomic_write_text,
    canonical_json,
    default_host,
)
from repro import __version__ as _REPRO_VERSION


@dataclass(frozen=True)
class SweepSubmission:
    """A sweep registered against a store: everything a worker needs."""

    store: Path
    key: str
    sweep: SweepSpec
    backend: str
    measure_module: str

    def tasks(self) -> list[CellTask]:
        """The submission's cells as keyed tasks, in canonical order."""
        return cell_tasks(
            self.sweep,
            self.backend,
            keyed=True,
            measure_module=self.measure_module,
        )


@dataclass(frozen=True)
class WorkerReport:
    """What one :func:`run_worker` call did to the grid."""

    host: str
    key: str
    executed: tuple[int, ...]
    failures: tuple[tuple[int, str], ...]
    cached: int
    lost_claims: int
    elapsed: float

    @property
    def ok(self) -> bool:
        return not self.failures

    def raise_if_failed(self) -> None:
        if self.failures:
            index, error = self.failures[0]
            raise SweepError(
                f"sweep cell {index} failed on worker {self.host}:\n{error}"
            )


@dataclass(frozen=True)
class SweepStatus:
    """A point-in-time census of one sweep's grid on a store."""

    key: str
    total: int
    done: int
    claimed: int
    pending: int
    missing: tuple[int, ...]

    @property
    def complete(self) -> bool:
        return self.done == self.total


def submit_sweep(
    sweep: SweepSpec,
    store: str | Path,
    backend: str | None = None,
) -> SweepSubmission:
    """Register *sweep* against *store* and return its submission.

    Resolves the topology backend (argument, else the spec's, else the
    process default — the runner's exact order, so every executor
    computes the same cell keys), derives the sweep key, and durably
    writes the spec document under ``sweeps/<key>.spec.json``.
    Submission is idempotent: the document is content-addressed by the
    key, so re-submitting the same sweep is a no-op and two hosts
    racing the submission write identical bytes.
    """
    from repro.sweep.measurements import get_measurement

    resolved = resolve_backend(sweep, backend)
    key = sweep_key(sweep, resolved)
    measure_module = get_measurement(sweep.measure).module
    path = submitted_spec_path(store, key)
    if not path.exists():
        document = {
            "format": ARTIFACT_FORMAT,
            "version": _REPRO_VERSION,
            "key": key,
            "backend": resolved,
            "measure_module": measure_module,
            "sweep": sweep.to_dict(),
        }
        atomic_write_text(path, canonical_json(document) + "\n")
    return SweepSubmission(
        store=Path(store),
        key=key,
        sweep=sweep,
        backend=resolved,
        measure_module=measure_module,
    )


def load_submission(store: str | Path, key: str) -> SweepSubmission:
    """Rehydrate a submission by key (the cross-host entry point)."""
    path = submitted_spec_path(store, key)
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError) as error:
        raise SweepError(
            f"no readable submitted sweep {key!r} under {store!s}: {error}"
        ) from error
    sweep = SweepSpec.from_dict(data["sweep"])
    backend = str(data["backend"])
    recomputed = sweep_key(sweep, backend)
    if recomputed != key:
        raise SweepError(
            f"submitted sweep {key!r} does not verify: this library "
            f"version ({_REPRO_VERSION}) derives {recomputed!r} — the "
            "document was written by a different version or corrupted; "
            "re-submit the sweep"
        )
    measure_module = data.get("measure_module") or "repro.sweep.measurements"
    return SweepSubmission(
        store=Path(store),
        key=key,
        sweep=sweep,
        backend=backend,
        measure_module=str(measure_module),
    )


def _resolve_submission(
    store: str | Path,
    sweep: SweepSpec | SweepSubmission | str,
    backend: str | None = None,
) -> SweepSubmission:
    """Accept a spec, a submission, or a bare key; return the submission."""
    if isinstance(sweep, SweepSubmission):
        return sweep
    if isinstance(sweep, SweepSpec):
        return submit_sweep(sweep, store, backend)
    if isinstance(sweep, str):
        return load_submission(store, sweep)
    raise SweepError(
        f"expected a SweepSpec, SweepSubmission, or sweep key, got {sweep!r}"
    )


#: Cells a worker claims per grid scan (see :func:`run_worker`).
DEFAULT_CLAIM_BATCH = 16


def run_worker(
    store: str | Path,
    sweep: SweepSpec | SweepSubmission | str,
    backend: str | None = None,
    host: str | None = None,
    ttl: float = DEFAULT_CLAIM_TTL,
    max_cells: int | None = None,
    wait: float | None = None,
    poll: float = 0.2,
    claim_batch: int = DEFAULT_CLAIM_BATCH,
) -> WorkerReport:
    """Drain claimable cells of *sweep* from *store*; return a report.

    The worker makes passes over the grid in canonical order.  Per pass
    it claims up to *claim_batch* result-less cells in one scan, then
    executes the claimed batch — claiming in bulk amortizes the scan
    (one walk of the grid per *claim_batch* cells instead of per cell)
    and keeps racing workers off each other's runways.  Claim semantics
    are unchanged from cell-at-a-time draining: every claim carries the
    usual TTL, is heartbeat-refreshed while its batch executes, and is
    released (or taken over after expiry, exactly as before) cell by
    cell — a worker that dies mid-batch forfeits only its unexecuted
    claims after one TTL.  When a pass finds work left but nothing
    claimable, the worker returns — unless *wait* seconds of patience
    remain, in which case it sleeps *poll* and rescans (the path by
    which expired claims of crashed peers are taken over).  A cell whose
    measurement raises is recorded in the report and never retried by
    this worker; the store is left untouched (failures do not poison the
    cache), so another worker — or a rerun after the bug is fixed — can
    still claim it.

    *max_cells* bounds how many cells this call executes (None =
    unbounded), which makes a worker preemptible on schedulers that
    meter work.
    """
    start = time.perf_counter()
    submission = _resolve_submission(store, sweep, backend)
    rstore = ResultStore(submission.store)
    me = host or default_host()
    tasks = submission.tasks()
    if claim_batch < 1:
        raise SweepError(f"claim_batch must be >= 1, got {claim_batch}")

    executed: list[int] = []
    failures: list[tuple[int, str]] = []
    failed: set[int] = set()
    cached = 0
    lost_claims = 0
    deadline = None if wait is None else time.monotonic() + float(wait)
    first_pass = True

    while True:
        progress = False
        missing = 0
        batch: list[CellTask] = []
        budget = (
            claim_batch
            if max_cells is None
            else min(claim_batch, max_cells - len(executed))
        )
        for task in tasks:
            if task.index in failed:
                continue
            if rstore.get(task.key) is not None:
                if first_pass:
                    cached += 1
                continue
            missing += 1
            if len(batch) >= budget:
                continue  # keep censusing; this scan's claims are full
            if not rstore.claim(task.key, owner=me, ttl=ttl):
                continue
            # The result may have landed between our get and claim (a
            # peer committing is what releases its claim).
            if rstore.get(task.key) is not None:
                lost_claims += 1
                missing -= 1
                rstore.release(task.key)
                continue
            batch.append(task)
        for position, task in enumerate(batch):
            try:
                # Refresh every claim still waiting behind this cell, so
                # a long cell cannot expire the rest of the batch.
                for pending in batch[position:]:
                    rstore.heartbeat(pending.key, me)
                index, value, error, elapsed = execute_cell(task)
                if error is None:
                    rstore.put(
                        task.key,
                        value,
                        elapsed,
                        scenario=task.spec_dict,
                        measure=task.measure,
                        measure_params=task.measure_params,
                        seed=task.seed,
                        stream=task.stream,
                        cell=task.index,
                        backend=task.backend,
                        host=me,
                    )
                    executed.append(index)
                else:
                    failures.append((index, error))
                    failed.add(index)
                progress = True
                missing -= 1
            finally:
                rstore.release(task.key)
        first_pass = False
        budget_left = max_cells is None or len(executed) < max_cells
        if missing == 0 or not budget_left:
            break
        if not progress:
            if deadline is None or time.monotonic() >= deadline:
                break
            time.sleep(poll)

    return WorkerReport(
        host=me,
        key=submission.key,
        executed=tuple(executed),
        failures=tuple(failures),
        cached=cached,
        lost_claims=lost_claims,
        elapsed=time.perf_counter() - start,
    )


def sweep_status(
    store: str | Path,
    sweep: SweepSpec | SweepSubmission | str,
    backend: str | None = None,
) -> SweepStatus:
    """A read-only census: done / claimed / pending cells of *sweep*."""
    submission = _resolve_submission(store, sweep, backend)
    rstore = ResultStore(submission.store)
    done = 0
    claimed = 0
    missing: list[int] = []
    for task in submission.tasks():
        if rstore.get(task.key) is not None:
            done += 1
            continue
        missing.append(task.index)
        info = rstore.claim_info(task.key)
        if info is not None and not info["expired"]:
            claimed += 1
    total = submission.sweep.num_cells
    return SweepStatus(
        key=submission.key,
        total=total,
        done=done,
        claimed=claimed,
        pending=total - done - claimed,
        missing=tuple(missing),
    )


def collect(
    store: str | Path,
    sweep: SweepSpec | SweepSubmission | str,
    backend: str | None = None,
    timeout: float | None = None,
    poll: float = 0.5,
    host: str | None = None,
    write: bool = True,
) -> SweepResult:
    """Reduce *sweep*: wait for a full grid, then write its artifact.

    Polls the store every *poll* seconds until every cell has a result
    (*timeout* ``None`` waits forever; ``0`` demands completeness now),
    then assembles the :class:`~repro.sweep.artifact.SweepResult` in
    canonical order and — unless *write* is False — durably writes it
    to ``sweeps/<key>.json``.  The reducer never executes cells; pair
    it with at least one worker.  Reduction is deterministic in the
    canonical core: whoever reduces, whatever the worker schedule, the
    core bytes (and digest) come out identical.
    """
    submission = _resolve_submission(store, sweep, backend)
    rstore = ResultStore(submission.store)
    tasks = submission.tasks()
    deadline = (
        None if timeout is None else time.monotonic() + float(timeout)
    )

    while True:
        payloads = []
        missing = []
        for task in tasks:
            payload = rstore.get(task.key)
            if payload is None:
                missing.append(task.index)
            else:
                payloads.append(payload)
        if not missing:
            break
        if deadline is not None and time.monotonic() >= deadline:
            raise SweepError(
                f"sweep {submission.key[:12]}… incomplete after "
                f"{timeout}s: {len(missing)}/{len(tasks)} cells have no "
                f"result (indices {missing[:10]}"
                f"{'…' if len(missing) > 10 else ''}) — are workers "
                "running, or did one fail? (worker failures are "
                "reported by run_worker, not stored)"
            )
        time.sleep(poll)

    result = SweepResult(
        key=submission.key,
        sweep=submission.sweep.to_dict(),
        backend=submission.backend,
        cell_keys=tuple(task.key for task in tasks),
        values=tuple(payload["value"] for payload in payloads),
        elapsed=tuple(
            float(payload.get("elapsed", 0.0)) for payload in payloads
        ),
        hosts=tuple(payload.get("host") for payload in payloads),
        reduced_by=host or default_host(),
    )
    if write:
        result.write(submission.store)
        rstore.sweep_orphans()  # reduction is the natural hygiene point
    return result


def gc_store(store: str | Path, yes: bool = False) -> dict:
    """Prune result cells unreachable from any submitted sweep.

    Walks every ``sweeps/*.spec.json`` under *store*, unions the cell
    keys of their grids (exactly what a worker would execute), and
    flags every stored result — plus its claim file, if any — whose key
    no submitted sweep can reach: leftovers of re-parameterized sweeps,
    abandoned experiments, or older measurement versions.  Dry-run by
    default: nothing is deleted unless *yes*.  Aborts without deleting
    anything when any spec document fails to load or verify —
    reachability computed from a partial census would flag live cells.

    Returns a JSON-ready summary: submitted sweep count, reachable and
    stored cell counts, the unreachable keys, the bytes they occupy
    (``reclaimed_bytes`` once *yes* deletes them), and whether deletion
    ran.
    """
    root = Path(store)
    rstore = ResultStore(root)
    sweeps_dir = root / "sweeps"
    reachable: set[str] = set()
    sweep_keys: list[str] = []
    for spec_path in sorted(sweeps_dir.glob("*.spec.json")):
        key = spec_path.name[: -len(".spec.json")]
        submission = load_submission(root, key)  # raises on corruption
        sweep_keys.append(key)
        reachable.update(task.key for task in submission.tasks())

    unreachable: list[str] = []
    reclaimed = 0
    stored = 0
    for key in rstore.keys():
        stored += 1
        if key in reachable:
            continue
        unreachable.append(key)
        for path in (rstore.path_for(key), rstore.claim_path(key)):
            try:
                reclaimed += path.stat().st_size
            except OSError:
                continue
    if yes:
        for key in unreachable:
            for path in (rstore.path_for(key), rstore.claim_path(key)):
                try:
                    path.unlink()
                except FileNotFoundError:
                    pass
    return {
        "store": str(root),
        "sweeps": len(sweep_keys),
        "reachable_cells": len(reachable),
        "stored_cells": stored,
        "unreachable_cells": len(unreachable),
        "unreachable_keys": unreachable,
        "reclaimed_bytes": reclaimed,
        "deleted": bool(yes),
    }


# ----------------------------------------------------------------------
# the local fleet (single-host N-worker execution)
# ----------------------------------------------------------------------


def _fleet_worker(
    store: str, key: str, ttl: float, host: str, claim_batch: int
) -> WorkerReport:
    """Module-level so ProcessPoolExecutor can pickle it."""
    return run_worker(store, key, ttl=ttl, host=host, claim_batch=claim_batch)


def run_fleet(
    sweep: SweepSpec,
    store: str | Path,
    workers: int = 2,
    backend: str | None = None,
    ttl: float = DEFAULT_CLAIM_TTL,
    timeout: float | None = None,
    claim_batch: int = DEFAULT_CLAIM_BATCH,
) -> SweepResult:
    """Submit, drain with *workers* local processes, reduce; one call.

    ``workers=1`` runs the single worker in-process (no pool), so a
    sequential run and an N-worker run differ only in who claims which
    cell — the artifact's canonical core is byte-identical either way.
    Worker failures surface here (first failing cell's traceback), like
    :meth:`SweepRunResult.raise_if_failed` does for the in-process
    runner.
    """
    if workers < 1:
        raise SweepError(f"fleet needs workers >= 1, got {workers}")
    submission = submit_sweep(sweep, store, backend)
    if workers == 1:
        reports = [
            run_worker(
                store,
                submission,
                ttl=ttl,
                host=default_host(),
                claim_batch=claim_batch,
            )
        ]
    else:
        base_host = default_host()
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(
                    _fleet_worker,
                    str(submission.store),
                    submission.key,
                    ttl,
                    f"{base_host}/w{rank}",
                    claim_batch,
                )
                for rank in range(workers)
            ]
            reports = [future.result() for future in futures]
    for report in reports:
        report.raise_if_failed()
    return collect(store, submission, timeout=timeout)


__all__ = [
    "DEFAULT_CLAIM_BATCH",
    "SweepStatus",
    "SweepSubmission",
    "WorkerReport",
    "collect",
    "gc_store",
    "load_submission",
    "run_fleet",
    "run_worker",
    "submit_sweep",
    "sweep_status",
]
