"""Versioned, content-hashed checkpoints of running simulations.

A checkpoint is a single JSON file:

    {"format": "repro-checkpoint", "version": 1,
     "sha256": "<hash of the canonical payload encoding>",
     "payload": {...}}

The payload serializes everything that determines the rest of a seeded
trajectory: the :class:`~repro.scenario.spec.ScenarioSpec`, the backend
state (:meth:`~repro.core.backend.GraphBackend.dump_state` — including
RNG-visible iteration orders), the driver's bookkeeping (round counters,
jump-chain position, the pending-death event queue, lifetime timers), the
NumPy bit-generator state, and each observer's accumulated measurements
plus its partially filled observation window.  NumPy arrays are embedded
as base64 blobs with dtype/shape, so the file is plain JSON end to end.

The restore contract (enforced by ``tests/test_service_checkpoint.py``
as a hypothesis property over random checkpoint times, on both
backends): a run restored at time T and advanced to the horizon is
**bit-identical** — events, observer reports, flood results, final RNG
state — to the same seeded run left uninterrupted.

The content hash is verified on load; a flipped byte or truncated file
raises :class:`~repro.errors.CheckpointError` instead of silently
resuming from garbage.
"""

from __future__ import annotations

import base64
import hashlib
import itertools
import json
import os
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.errors import CheckpointError
from repro.models.adversarial import AdversarialStreamingNetwork
from repro.models.base import DynamicNetwork, RoundReport
from repro.models.general import GeneralChurnNetwork
from repro.models.poisson import PoissonNetwork
from repro.models.streaming import StreamingNetwork
from repro.models.threshold import ThresholdStreamingNetwork
from repro.models.trace import TraceNetwork
from repro.scenario.registry import build_network
from repro.scenario.spec import ScenarioSpec
from repro.sim.events import (
    EdgeCreated,
    EdgeDestroyed,
    EventRecord,
    NodeBorn,
    NodeDied,
    NodesBorn,
    NodesDied,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.scenario.observers import Observer
    from repro.scenario.simulation import Simulation

FORMAT = "repro-checkpoint"
VERSION = 1

#: Filename prefix of directory-managed checkpoints.
FILE_PREFIX = "ckpt-"


# ----------------------------------------------------------------------
# JSON codec (NumPy arrays as base64 blobs, canonical hashing)
# ----------------------------------------------------------------------


def encode_value(value: Any) -> Any:
    """Recursively convert *value* into plain JSON-able structures."""
    if isinstance(value, np.ndarray):
        return {
            "__ndarray__": True,
            "dtype": str(value.dtype),
            "shape": list(value.shape),
            "data": base64.b64encode(np.ascontiguousarray(value).tobytes()).decode(
                "ascii"
            ),
        }
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, dict):
        return {str(key): encode_value(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [encode_value(item) for item in value]
    return value


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value` (applied after ``json.loads``)."""
    if isinstance(value, dict):
        if value.get("__ndarray__"):
            raw = base64.b64decode(value["data"])
            return np.frombuffer(raw, dtype=np.dtype(value["dtype"])).reshape(
                value["shape"]
            )
        return {key: decode_value(item) for key, item in value.items()}
    if isinstance(value, list):
        return [decode_value(item) for item in value]
    return value


def _canonical_text(encoded_payload: Any) -> str:
    try:
        return json.dumps(
            encoded_payload, sort_keys=True, separators=(",", ":")
        )
    except (TypeError, ValueError) as error:
        raise CheckpointError(
            f"checkpoint payload is not JSON-serializable: {error}"
        ) from error


def _payload_hash(encoded_payload: Any) -> str:
    return hashlib.sha256(
        _canonical_text(encoded_payload).encode("utf-8")
    ).hexdigest()


# ----------------------------------------------------------------------
# event / report codec (observer windows in flight)
# ----------------------------------------------------------------------

_KIND_CODEC = {
    "born": NodeBorn,
    "died": NodeDied,
    "batch_born": NodesBorn,
    "batch_died": NodesDied,
}
_KIND_NAMES = {cls: name for name, cls in _KIND_CODEC.items()}


def encode_event(event: EventRecord) -> dict:
    """Serialize one :class:`EventRecord` to a JSON-able dict."""
    kind_name = _KIND_NAMES[type(event.kind)]
    if isinstance(event.kind, (NodesBorn, NodesDied)):
        ids: Any = [int(u) for u in event.kind.node_ids]
    else:
        ids = int(event.kind.node_id)
    return {
        "t": event.time,
        "kind": kind_name,
        "ids": ids,
        "created": [[e.source, e.target] for e in event.edges_created],
        "destroyed": [[e.source, e.target] for e in event.edges_destroyed],
    }


def decode_event(data: dict) -> EventRecord:
    """Inverse of :func:`encode_event`."""
    kind_cls = _KIND_CODEC[data["kind"]]
    if kind_cls in (NodesBorn, NodesDied):
        kind = kind_cls(node_ids=tuple(int(u) for u in data["ids"]))
    else:
        kind = kind_cls(node_id=int(data["ids"]))
    return EventRecord(
        time=float(data["t"]),
        kind=kind,
        edges_created=[EdgeCreated(s, t) for s, t in data["created"]],
        edges_destroyed=[EdgeDestroyed(s, t) for s, t in data["destroyed"]],
    )


def encode_report(report: RoundReport) -> dict:
    """Serialize a (possibly partially filled) observation window."""
    return {
        "start_time": report.start_time,
        "end_time": report.end_time,
        "events": [encode_event(event) for event in report.events],
    }


def decode_report(data: dict) -> RoundReport:
    """Inverse of :func:`encode_report`."""
    return RoundReport(
        start_time=float(data["start_time"]),
        end_time=float(data["end_time"]),
        events=[decode_event(event) for event in data["events"]],
    )


# ----------------------------------------------------------------------
# driver (de)serializers
# ----------------------------------------------------------------------


def _dump_streaming(network: StreamingNetwork) -> dict:
    return {"round_number": network.round_number}


def _restore_streaming(network: StreamingNetwork, data: dict) -> None:
    network.round_number = int(data["round_number"])


def _dump_threshold(network: ThresholdStreamingNetwork) -> dict:
    return {
        "round_number": network.round_number,
        "swept_all": network._swept_all,
        "grace_id": network._grace_id,
    }


def _restore_threshold(network: ThresholdStreamingNetwork, data: dict) -> None:
    network.round_number = int(data["round_number"])
    network._swept_all = bool(data["swept_all"])
    grace_id = data["grace_id"]
    network._grace_id = None if grace_id is None else int(grace_id)


def _dump_adversarial(network: AdversarialStreamingNetwork) -> dict:
    return {"round_number": network.round_number}


def _restore_adversarial(
    network: AdversarialStreamingNetwork, data: dict
) -> None:
    network.round_number = int(data["round_number"])


def _dump_poisson(network: PoissonNetwork) -> dict:
    return {"event_count": network.event_count}


def _restore_poisson(network: PoissonNetwork, data: dict) -> None:
    network.event_count = int(data["event_count"])


def _dump_general(network: GeneralChurnNetwork) -> dict:
    return {
        "event_count": network.event_count,
        "next_birth_time": network._next_birth_time,
        "pending_deaths": [
            list(entry) for entry in network.deaths.dump_pending()
        ],
    }


def _restore_general(network: GeneralChurnNetwork, data: dict) -> None:
    network.event_count = int(data["event_count"])
    network._next_birth_time = float(data["next_birth_time"])
    network.deaths.restore_pending(data["pending_deaths"])


def _dump_trace(network: TraceNetwork) -> dict:
    return {"round_number": network.round_number, "pos": network._pos}


def _restore_trace(network: TraceNetwork, data: dict) -> None:
    network.round_number = int(data["round_number"])
    network._pos = int(data["pos"])


#: Exact driver type -> (kind tag, dump, restore).  Drivers absent here
#: (the protocol-managed baselines) cannot be checkpointed.
_DRIVER_CODECS: dict[type, tuple[str, Any, Any]] = {
    StreamingNetwork: ("streaming", _dump_streaming, _restore_streaming),
    ThresholdStreamingNetwork: (
        "threshold", _dump_threshold, _restore_threshold,
    ),
    AdversarialStreamingNetwork: (
        "adversarial", _dump_adversarial, _restore_adversarial,
    ),
    PoissonNetwork: ("poisson", _dump_poisson, _restore_poisson),
    GeneralChurnNetwork: ("general", _dump_general, _restore_general),
    TraceNetwork: ("trace", _dump_trace, _restore_trace),
}


def _driver_codec(network: DynamicNetwork) -> tuple[str, Any, Any]:
    codec = _DRIVER_CODECS.get(type(network))
    if codec is None:
        supported = sorted(kind for kind, _, _ in _DRIVER_CODECS.values())
        raise CheckpointError(
            f"driver {type(network).__name__} does not support "
            f"checkpointing (supported churn models: {supported})"
        )
    return codec


def _skeleton_spec(spec: ScenarioSpec, backend_kind: str) -> ScenarioSpec:
    """The spec used to rebuild an *empty, unwarmed* driver skeleton.

    Restore overwrites the backend, RNG, clock, and driver bookkeeping
    afterwards, so warm-up must be disabled — it would burn RNG draws
    and wall-clock for state that is discarded.  The backend is pinned to
    the recorded kind: a checkpoint taken under ``REPRO_BACKEND=array``
    restores as an array backend regardless of the restoring process's
    environment.
    """
    params = dict(spec.churn_params)
    if spec.churn in ("streaming", "threshold", "adversarial"):
        params["warm"] = False
        params.pop("fast_warm", None)
    elif spec.churn in ("poisson", "general"):
        params["warm_time"] = 0.0
        params.pop("fast_warm", None)
    return spec.with_(churn_params=params, backend=backend_kind)


# ----------------------------------------------------------------------
# the checkpoint object
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Checkpoint:
    """A parsed, hash-verified checkpoint payload."""

    payload: dict
    path: Path | None = None

    @property
    def spec(self) -> ScenarioSpec:
        return ScenarioSpec.from_dict(self.payload["spec"])

    @property
    def time(self) -> float:
        return float(self.payload["time"])

    @property
    def rounds_completed(self) -> int:
        return int(self.payload["rounds_completed"])

    @property
    def observer_names(self) -> list[str]:
        return [entry["name"] for entry in self.payload["observers"]]


def build_payload(simulation: "Simulation") -> dict:
    """Capture a :class:`Simulation`'s full resumable state as a dict."""
    network = simulation.network
    kind, dump, _ = _driver_codec(network)
    observers = []
    for observer in simulation.observers:
        state = observer.state_dict()
        try:
            _canonical_text(encode_value(state))
        except CheckpointError as error:
            raise CheckpointError(
                f"observer {observer.name!r} has non-serializable state: "
                f"{error}"
            ) from error
        observers.append({"name": observer.name, "state": state})
    # Feeds exist only for observers with every > 0, so a feed's position
    # in _feeds is NOT its observer's position in simulation.observers —
    # record the observer-list index, which is what restore resolves.
    slot_of = {id(obs): i for i, obs in enumerate(simulation.observers)}
    return {
        "spec": simulation.spec.to_dict(),
        "time": network.now,
        "rounds_completed": simulation.rounds_completed,
        "backend": network.state.dump_state(),
        "driver": {"kind": kind, **dump(network)},
        "rng": network.rng.bit_generator.state,
        "observers": observers,
        "feeds": [
            {
                "observer": slot_of[id(feed.observer)],
                "window": encode_report(feed.window),
                "last_flush_round": feed.last_flush_round,
            }
            for feed in simulation._feeds
        ],
    }


def write_checkpoint(simulation: "Simulation", path: str | Path) -> Path:
    """Write *simulation*'s state to *path* atomically; returns the path.

    The scratch file is fsynced before the rename (and the directory
    after it, where the platform allows), so a crash or power loss never
    leaves *path* pointing at a partially written envelope.
    """
    target = Path(path)
    encoded = encode_value(build_payload(simulation))
    envelope = {
        "format": FORMAT,
        "version": VERSION,
        "sha256": _payload_hash(encoded),
        "payload": encoded,
    }
    target.parent.mkdir(parents=True, exist_ok=True)
    scratch = target.with_name(target.name + ".tmp")
    with scratch.open("w", encoding="utf-8") as handle:
        handle.write(json.dumps(envelope, sort_keys=True))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(scratch, target)
    try:  # best effort: persist the rename itself
        dir_fd = os.open(target.parent, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    else:
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    return target


def ranked_checkpoints(directory: str | Path) -> list[Path]:
    """``ckpt-*.json`` files in *directory*, least advanced first.

    Files are ranked by the round count embedded in the name (the
    ``-r<rounds>`` suffix written by :meth:`Simulation.save_checkpoint`),
    then by name, so the last entry is furthest along, not newest mtime.
    """
    return sorted(
        Path(directory).glob(f"{FILE_PREFIX}*.json"),
        key=lambda p: (_rounds_in_name(p.name), p.name),
    )


def latest_checkpoint(directory: str | Path) -> Path:
    """The most advanced ``ckpt-*.json`` file in *directory*."""
    candidates = ranked_checkpoints(directory)
    if not candidates:
        raise CheckpointError(
            f"no {FILE_PREFIX}*.json checkpoint files in {directory}"
        )
    return candidates[-1]


def _rounds_in_name(name: str) -> int:
    stem = name.rsplit(".", 1)[0]
    tail = stem.rsplit("-r", 1)
    try:
        return int(tail[1])
    except (IndexError, ValueError):
        return -1


def load_checkpoint(source: str | Path) -> Checkpoint:
    """Load and verify a checkpoint file (or the latest in a directory).

    For a directory, candidates are tried from most to least advanced:
    if the furthest-along file fails verification (corrupted, truncated,
    wrong version), a warning is emitted and the next one is tried, so a
    single damaged file never makes a directory of good checkpoints
    unrestorable.
    """
    path = Path(source)
    if not path.is_dir():
        return _load_checkpoint_file(path)
    candidates = ranked_checkpoints(path)
    if not candidates:
        raise CheckpointError(
            f"no {FILE_PREFIX}*.json checkpoint files in {path}"
        )
    failures: list[str] = []
    for candidate in reversed(candidates):
        try:
            return _load_checkpoint_file(candidate)
        except CheckpointError as error:
            warnings.warn(
                f"skipping unusable checkpoint {candidate.name}: {error}",
                RuntimeWarning,
                stacklevel=2,
            )
            failures.append(f"{candidate.name}: {error}")
    raise CheckpointError(
        f"no loadable checkpoint in {path}; all candidates failed: "
        + "; ".join(failures)
    )


def _load_checkpoint_file(path: Path) -> Checkpoint:
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        raise CheckpointError(
            f"cannot read checkpoint {path}: {error}"
        ) from error
    try:
        envelope = json.loads(text)
    except json.JSONDecodeError as error:
        raise CheckpointError(
            f"checkpoint {path} is not valid JSON (truncated write?): "
            f"{error}"
        ) from error
    if not isinstance(envelope, dict) or envelope.get("format") != FORMAT:
        raise CheckpointError(f"{path} is not a {FORMAT} file")
    if envelope.get("version") != VERSION:
        raise CheckpointError(
            f"checkpoint {path} has format version "
            f"{envelope.get('version')!r}; this build reads version "
            f"{VERSION}"
        )
    recorded = envelope.get("sha256")
    actual = _payload_hash(envelope["payload"])
    if recorded != actual:
        raise CheckpointError(
            f"checkpoint {path} failed content-hash verification "
            f"(recorded {recorded!r}, computed {actual!r}) — the file is "
            "corrupted"
        )
    return Checkpoint(payload=decode_value(envelope["payload"]), path=path)


# ----------------------------------------------------------------------
# restore
# ----------------------------------------------------------------------


def rebuild_network(checkpoint: Checkpoint) -> DynamicNetwork:
    """Reconstruct the driver + backend + RNG at the checkpointed instant."""
    spec = checkpoint.spec
    driver = checkpoint.payload["driver"]
    backend_payload = checkpoint.payload["backend"]
    network = build_network(
        _skeleton_spec(spec, str(backend_payload["kind"])), seed=0
    )
    kind, _, restore = _driver_codec(network)
    if kind != driver["kind"]:
        raise CheckpointError(
            f"checkpoint records a {driver['kind']!r} driver but the spec "
            f"builds {kind!r}"
        )
    network.state.restore_state(backend_payload)
    network.rng.bit_generator.state = checkpoint.payload["rng"]
    restore(network, driver)
    network.clock.advance_to(checkpoint.time)
    return network


def restore_observers(
    checkpoint: Checkpoint, declarations: tuple = ()
) -> "list[Observer]":
    """Rebuild the checkpoint's observers with their recorded state.

    With no *declarations*, each observer is re-created by registry name
    (every stock observer is no-argument constructible; cadence and
    parameters are part of the recorded state).  Explicit declarations
    (for custom observer classes) must match the recorded names
    one-for-one, in order.
    """
    from repro.scenario.observers import make_observer
    from repro.scenario.simulation import resolve_observer

    entries = checkpoint.payload["observers"]
    if declarations:
        observers = [resolve_observer(d) for d in declarations]
        names = [observer.name for observer in observers]
        recorded = [entry["name"] for entry in entries]
        if names != recorded:
            raise CheckpointError(
                f"observer declarations {names} do not match the "
                f"checkpoint's recorded observers {recorded}"
            )
    else:
        observers = []
        for entry in entries:
            try:
                observers.append(make_observer(entry["name"]))
            except Exception as error:
                raise CheckpointError(
                    f"cannot rebuild observer {entry['name']!r} from the "
                    f"registry ({error}); pass observers= declarations "
                    "to Simulation.restore for custom observer classes"
                ) from error
    for observer, entry in zip(observers, entries):
        observer.load_state_dict(entry["state"])
    return observers


# ----------------------------------------------------------------------
# filenames
# ----------------------------------------------------------------------

_SESSION_COUNTER = itertools.count(1)


def next_session_tag() -> str:
    """A per-process-unique tag for one Simulation's checkpoint series.

    Combines the pid with a process-local counter so concurrent
    processes (and multiple simulations in one process, e.g. an
    experiment's replication loop) can share a checkpoint directory
    without overwriting each other's files.
    """
    return f"{os.getpid():x}-{next(_SESSION_COUNTER):04d}"


def checkpoint_filename(tag: str, rounds_completed: int) -> str:
    """Canonical checkpoint filename for a session tag + round count."""
    return f"{FILE_PREFIX}{tag}-r{int(rounds_completed):010d}.json"
