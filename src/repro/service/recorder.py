"""The ``record_trace`` observer: turn any run into a replayable trace.

Attach it to any scenario and it logs the population's churn as
``{"t", "op", "id"}`` records (the :mod:`repro.churn.trace` schema):
one ``join`` per node alive at attach time (at its original birth time,
so ages are preserved), then every subsequent birth and death at its
exact event time.  The resulting trace replays through
``churn="trace"`` with an *identical population trajectory* from the
attach point on — same alive set at every instant — while edge wiring
re-randomizes through whatever policy the replay composes.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, IO

from repro.churn.trace import ChurnTrace
from repro.core.snapshot import Snapshot
from repro.errors import ConfigurationError
from repro.models.base import RoundReport
from repro.scenario.observers import Observer, register_observer


@register_observer
class TraceRecorder(Observer):
    """Records the session's churn as a replayable JSONL trace.

    Args:
        path: optional JSONL file to stream events into (each line is
            flushed as written, so a killed run keeps its trace so far).
        every: window cadence; events carry their exact timestamps
            regardless, so the cadence only controls batching latency.
    """

    name = "record_trace"
    needs_snapshot = False

    def __init__(self, path: str | None = None, every: int = 1) -> None:
        if int(every) < 1:
            raise ConfigurationError(
                "record_trace needs every >= 1 (it must see every window)"
            )
        super().__init__(every=every)
        self.path = None if path is None else str(path)
        self.lines: list[dict] = []
        self._fh: IO[str] | None = None

    def bind(self, simulation: Any) -> None:
        super().bind(simulation)
        # (Re)write the file from the recorded lines: after a checkpoint
        # restore this replays the pre-checkpoint prefix exactly once.
        if self.path is not None:
            self._fh = Path(self.path).open("w", encoding="utf-8")
            for record in self.lines:
                self._fh.write(json.dumps(record, sort_keys=True) + "\n")
            self._fh.flush()
        if not self.lines:
            state = simulation.network.state
            alive = sorted(
                state.alive_ids(),
                key=lambda u: (state.birth_time(u), u),
            )
            for node_id in alive:
                self._emit(
                    {
                        "t": float(state.birth_time(node_id)),
                        "op": "join",
                        "id": int(node_id),
                    }
                )

    def on_round(self, report: RoundReport, snapshot: Snapshot | None) -> None:
        del snapshot
        for event in report.events:
            if event.is_birth:
                op = "join"
            elif event.is_death:
                op = "leave"
            else:  # pragma: no cover - drivers only emit births/deaths
                continue
            for node_id in event.node_ids:
                self._emit({"t": event.time, "op": op, "id": int(node_id)})

    def _emit(self, record: dict) -> None:
        self.lines.append(record)
        if self._fh is not None:
            self._fh.write(json.dumps(record, sort_keys=True) + "\n")
            self._fh.flush()

    def trace(self) -> ChurnTrace:
        """The recorded events as a validated :class:`ChurnTrace`."""
        return ChurnTrace.from_dicts(self.lines)

    def result(self) -> dict[str, Any]:
        joins = sum(1 for record in self.lines if record["op"] == "join")
        return {
            "events": len(self.lines),
            "joins": joins,
            "leaves": len(self.lines) - joins,
            "path": self.path,
        }
