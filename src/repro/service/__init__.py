"""Service plane: checkpoint/restore, trace recording, metrics streaming.

Three pillars turn the experiment harness into a long-lived simulation
service (see ``docs/architecture.md``, "Service plane"):

* :mod:`repro.service.checkpoint` — versioned, content-hashed
  :class:`Checkpoint` files capturing full backend + driver + RNG +
  observer state; a restored run is bit-identical to an uninterrupted
  seeded run.
* :mod:`repro.service.recorder` — the ``record_trace`` observer, turning
  any scenario into a replayable join/leave log (``churn="trace"``).
* :mod:`repro.service.metrics` — the ``metrics`` observer, streaming
  per-window JSONL counters with a Prometheus-text exposition helper.

This ``__init__`` stays import-light: :mod:`repro.scenario.simulation`
imports :mod:`repro.service.options` from inside its checkpointing code
paths (which executes this package module), so anything heavier is
exposed lazily via module ``__getattr__``.
"""

from __future__ import annotations

from repro.service.options import (
    ServiceOptions,
    current_service_options,
    use_service_options,
)

__all__ = [
    "Checkpoint",
    "CheckpointError",
    "MetricsSink",
    "ServiceOptions",
    "TraceRecorder",
    "current_service_options",
    "load_checkpoint",
    "prometheus_text",
    "use_service_options",
]

_LAZY = {
    "Checkpoint": "repro.service.checkpoint",
    "CheckpointError": "repro.errors",
    "load_checkpoint": "repro.service.checkpoint",
    "MetricsSink": "repro.service.metrics",
    "prometheus_text": "repro.service.metrics",
    "TraceRecorder": "repro.service.recorder",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
