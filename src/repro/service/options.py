"""Ambient checkpointing options (service plane).

Mirrors the sweep plane's ``use_sweep_options``: the experiment layer
wraps whole experiment runs in :func:`use_service_options` so every
:class:`~repro.scenario.simulation.Simulation` built underneath inherits
a checkpoint directory and cadence without threading kwargs through all
seventeen experiment modules.  Explicit ``Simulation``/spec settings
always win over the ambient value.

Stdlib-only on purpose: :mod:`repro.scenario.simulation` imports this
module from inside its hot construction path.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True)
class ServiceOptions:
    """Ambient defaults for checkpointing simulations."""

    checkpoint_every: int | None = None
    checkpoint_dir: str | None = None


_OPTIONS: ContextVar[ServiceOptions] = ContextVar(
    "repro_service_options", default=ServiceOptions()
)


def current_service_options() -> ServiceOptions:
    """The ambient :class:`ServiceOptions` for this context."""
    return _OPTIONS.get()


@contextmanager
def use_service_options(
    checkpoint_every: int | None = None,
    checkpoint_dir: str | None = None,
) -> Iterator[None]:
    """Override the ambient checkpointing options within a ``with`` block.

    ``None`` arguments leave the corresponding ambient value untouched,
    so nested scopes compose.
    """
    if checkpoint_every is None and checkpoint_dir is None:
        yield
        return
    base = _OPTIONS.get()
    token = _OPTIONS.set(
        ServiceOptions(
            checkpoint_every=(
                base.checkpoint_every
                if checkpoint_every is None
                else int(checkpoint_every)
            ),
            checkpoint_dir=(
                base.checkpoint_dir
                if checkpoint_dir is None
                else str(checkpoint_dir)
            ),
        )
    )
    try:
        yield
    finally:
        _OPTIONS.reset(token)
