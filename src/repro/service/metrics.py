"""The ``metrics`` observer: streaming JSONL counters for live runs.

A :class:`MetricsSink` emits one JSON object per observation window —
alive nodes, distinct edge count, cumulative and per-window churn
volume, optional expansion-probe minima and wall-clock per window — plus
one line per flood result and a final summary line.  Tail the file while
a multi-hour run is in flight:

    tail -f metrics.jsonl | python -m json.tool --json-lines

:func:`prometheus_text` renders any flat metrics mapping in the
Prometheus text exposition format, so a scrape endpoint only needs to
serve ``prometheus_text(sink.gauges())``.

Checkpoint-safe: the emitted lines are part of the observer's state, so
a restored run rewrites the file prefix it already emitted exactly once
and continues appending — the sink's output is byte-identical (modulo
wall-clock fields; disable them with ``wallclock=False`` for strict
byte-level comparisons) to an uninterrupted run's.
"""

from __future__ import annotations

import json
import time
from numbers import Number
from pathlib import Path
from typing import IO, Any, Mapping

from repro.analysis.expansion import adversarial_expansion_upper_bound
from repro.core.csr import CSRView
from repro.core.snapshot import Snapshot
from repro.errors import ConfigurationError
from repro.flooding.result import FloodingResult
from repro.models.base import RoundReport
from repro.scenario.observers import Observer, register_observer


@register_observer
class MetricsSink(Observer):
    """Streams per-window counters as JSONL.

    Args:
        path: optional JSONL file to stream into (each line flushed).
            Must be unique per session: ``bind`` truncates the file to
            re-emit recorded lines exactly once (the checkpoint-restore
            contract), so two sessions sharing one path clobber each
            other.  Sweeps should derive it per replication (e.g. from
            the seed), the way checkpoint files get per-session tags.
        every: window cadence in rounds.
        probe: also run an expansion probe per window and report its
            minimum ratio (uses the window's shared analysis view).
        probe_sets: random sets per expansion probe.
        probe_seed: probe RNG seed (independent of the driver's stream).
        wallclock: include per-window wall-clock milliseconds; disable
            for byte-identical output across runs.
    """

    name = "metrics"
    needs_snapshot = False
    needs_view = False  # instance-overridden when probe=True

    def __init__(
        self,
        path: str | None = None,
        every: int = 1,
        probe: bool = False,
        probe_sets: int = 16,
        probe_seed: int = 0,
        wallclock: bool = True,
    ) -> None:
        if int(every) < 1:
            raise ConfigurationError("metrics sink needs every >= 1")
        super().__init__(every=every)
        self.path = None if path is None else str(path)
        self.probe = bool(probe)
        self.probe_sets = int(probe_sets)
        self.probe_seed = int(probe_seed)
        self.wallclock = bool(wallclock)
        if self.probe:
            self.needs_view = True
        self.lines: list[dict] = []
        self.total_births = 0
        self.total_deaths = 0
        self.flood_count = 0
        self._fh: IO[str] | None = None
        self._last_wall: float | None = None
        self._pending: dict | None = None

    # ------------------------------------------------------------------
    # session hooks
    # ------------------------------------------------------------------

    def bind(self, simulation: Any) -> None:
        super().bind(simulation)
        # Restored sinks already applied probe=True to needs_view via
        # load_state_dict; re-derive it so the session shares a view.
        if self.probe:
            self.needs_view = True
        if self.path is not None:
            # Truncating keeps restored output exactly-once; it also means
            # the path must be unique per session (see the class docstring).
            self._fh = Path(self.path).open("w", encoding="utf-8")
            for record in self.lines:
                self._fh.write(json.dumps(record, sort_keys=True) + "\n")
            self._fh.flush()
        self._last_wall = time.perf_counter() if self.wallclock else None

    def on_round(self, report: RoundReport, snapshot: Snapshot | None) -> None:
        del snapshot
        network = self.simulation.network
        births = len(report.births)
        deaths = len(report.deaths)
        self.total_births += births
        self.total_deaths += deaths
        record: dict[str, Any] = {
            "event": "window",
            "t": network.now,
            "rounds": self.simulation.rounds_completed,
            "alive": network.num_alive(),
            "edges": network.state.num_edges(),
            "births": births,
            "deaths": deaths,
            "total_births": self.total_births,
            "total_deaths": self.total_deaths,
        }
        if self.wallclock:
            now = time.perf_counter()
            if self._last_wall is not None:
                record["wall_ms"] = round((now - self._last_wall) * 1e3, 3)
            self._last_wall = now
        if self.probe:
            # Completed by on_view (the session delivers the shared view
            # right after on_round within the same window).
            self._pending = record
        else:
            self._emit(record)

    def on_view(self, report: RoundReport | None, view: CSRView) -> None:
        del report
        if self._pending is None:
            return  # the final-state view; the summary line covers it
        record = self._pending
        self._pending = None
        if view.n >= 2:
            probe = adversarial_expansion_upper_bound(
                view,
                seed=self.probe_seed,
                num_random_sets=self.probe_sets,
                greedy_restarts=2,
            )
            record["probe_min_ratio"] = probe.min_ratio
            record["probe_witness_size"] = probe.witness_size
        self._emit(record)

    def on_flood(self, result: FloodingResult) -> None:
        self.flood_count += 1
        self._emit(
            {
                "event": "flood",
                "completed": result.completed,
                "completion_round": result.completion_round,
                "final_informed": result.final_informed,
                "final_network_size": result.final_network_size,
                "max_informed": result.max_informed,
            }
        )

    def on_finish(self, snapshot: Snapshot | None) -> None:
        del snapshot
        network = self.simulation.network
        self._emit(
            {
                "event": "summary",
                "t": network.now,
                "rounds": self.simulation.rounds_completed,
                "alive": network.num_alive(),
                "edges": network.state.num_edges(),
                "total_births": self.total_births,
                "total_deaths": self.total_deaths,
                "floods": self.flood_count,
            }
        )

    # ------------------------------------------------------------------
    # output
    # ------------------------------------------------------------------

    def _emit(self, record: dict) -> None:
        self.lines.append(record)
        if self._fh is not None:
            self._fh.write(json.dumps(record, sort_keys=True) + "\n")
            self._fh.flush()

    def gauges(self) -> dict[str, float]:
        """Current values as a flat mapping for :func:`prometheus_text`."""
        latest = next(
            (
                record
                for record in reversed(self.lines)
                if record["event"] in ("window", "summary")
            ),
            None,
        )
        gauges: dict[str, float] = {
            "total_births": self.total_births,
            "total_deaths": self.total_deaths,
            "floods": self.flood_count,
        }
        if latest is not None:
            for key in ("t", "rounds", "alive", "edges", "probe_min_ratio"):
                if key in latest:
                    gauges[key] = latest[key]
        return gauges

    def result(self) -> dict[str, Any]:
        windows = sum(1 for r in self.lines if r["event"] == "window")
        return {
            "lines": len(self.lines),
            "windows": windows,
            "floods": self.flood_count,
            "total_births": self.total_births,
            "total_deaths": self.total_deaths,
            "path": self.path,
            "last": self.lines[-1] if self.lines else None,
        }


def prometheus_text(
    metrics: Mapping[str, Any], prefix: str = "repro"
) -> str:
    """Render *metrics* in the Prometheus text exposition format.

    Non-numeric values are skipped; keys are emitted sorted, each as an
    untyped-label gauge: ``# TYPE <prefix>_<key> gauge`` then the sample.
    """
    lines: list[str] = []
    for key in sorted(metrics):
        value = metrics[key]
        if isinstance(value, bool) or not isinstance(value, Number):
            continue
        try:
            rendered = float(value)  # Number includes e.g. complex
        except (TypeError, ValueError):
            continue
        name = f"{prefix}_{key}"
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {rendered:g}")
    return "\n".join(lines) + ("\n" if lines else "")
