"""Terminal adapters over :mod:`repro.api` — parse, delegate, print.

This package is deliberately thin: every command line maps onto a
public :mod:`repro.api` (or :mod:`repro.experiments.registry`) call,
and nothing here is importable logic worth testing beyond argument
wiring.  ``python -m repro.cli`` and the historical ``python -m
repro.experiments`` entry point run the same :func:`main`; the
``sweep`` subcommand family (``run`` / ``worker`` / ``reduce`` /
``status``) lives in :mod:`repro.cli.sweep`.
"""

from repro.cli.main import main

__all__ = ["main"]
