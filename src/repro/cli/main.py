"""The root command line: experiments, scenario files, restore, sweeps.

Historically this lived in ``repro.experiments.__main__``; it moved
here when the interface layer split from the engine (``repro.api``),
and the old module remains a re-exporting shim so both ``python -m
repro.experiments`` and ``python -m repro.cli`` keep working.  A
leading ``sweep`` argument routes to the fleet subcommands in
:mod:`repro.cli.sweep`; everything else is the experiment harness.

Besides the registered experiments, ``--scenario file.json`` runs a
scenario defined purely in JSON through the declarative
:mod:`repro.scenario` layer (churn × policy × protocol × observers).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core.backend import BACKEND_NAMES
from repro.experiments.registry import all_experiments, run_experiment


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "sweep":
        from repro.cli.sweep import main as sweep_main

        return sweep_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's tables and figures.  "
        "(Multi-host sweep execution lives under the `sweep` "
        "subcommand: `... sweep {run,worker,reduce,status} --help`.)",
    )
    parser.add_argument(
        "experiment_ids",
        nargs="*",
        help="experiment ids to run (e.g. EXP-01 EXP-06)",
    )
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument(
        "--full",
        action="store_true",
        help="use the full (EXPERIMENTS.md) parameters instead of quick mode",
    )
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    parser.add_argument(
        "--backend",
        choices=list(BACKEND_NAMES),
        default=None,
        help="topology backend for every simulated network "
        "(default: REPRO_BACKEND env var, else dict)",
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        default=None,
        help="also write each experiment's rows to DIR/<EXP-ID>.csv",
    )
    parser.add_argument(
        "--scenario",
        metavar="FILE",
        default=None,
        help="run a JSON-defined scenario (see repro.scenario) instead of "
        "a registered experiment",
    )
    parser.add_argument(
        "--sweep",
        metavar="FILE",
        default=None,
        help="run a JSON-defined parameter sweep (a SweepSpec document, "
        "see repro.sweep) and print its cell values as JSON; honors "
        "--jobs/--store/--resume and --backend",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for replication sweeps inside experiments "
        "(default 1 = sequential; results are bit-identical either way)",
    )
    parser.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help="content-addressed sweep result store: cells are persisted "
        "to DIR; combine with --resume to serve warm cells from it",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="serve sweep cells already present in --store instead of "
        "re-running them (a fully warm store executes zero cells)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help="service plane: dump resumable simulation checkpoints into "
        "DIR (combine with --checkpoint-every; restore with --restore)",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help="service plane: checkpoint cadence in completed rounds "
        "(needs --checkpoint-dir)",
    )
    parser.add_argument(
        "--restore",
        metavar="PATH",
        default=None,
        help="resume a checkpointed scenario session from a checkpoint "
        "file (or the most advanced ckpt-*.json in a directory) and run "
        "it to its horizon",
    )
    args = parser.parse_args(argv)

    if args.jobs is not None and args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.resume and args.store is None:
        parser.error("--resume needs --store DIR")
    if args.checkpoint_every is not None and args.checkpoint_every < 0:
        parser.error("--checkpoint-every must be >= 0")
    if args.checkpoint_every and args.checkpoint_dir is None:
        parser.error("--checkpoint-every needs --checkpoint-dir DIR")

    if args.scenario is not None and args.sweep is not None:
        parser.error("--scenario and --sweep are mutually exclusive")

    if args.restore is not None:
        if (
            args.experiment_ids
            or args.all
            or args.full
            or args.csv
            or args.scenario is not None
            or args.sweep is not None
            or args.jobs is not None
            or args.store is not None
            or args.resume
        ):
            parser.error(
                "--restore cannot be combined with experiment ids, "
                "--all, --full, --csv, --scenario, --sweep, or the "
                "sweep flags (--jobs/--store/--resume)"
            )
        return run_restore(
            args.restore,
            checkpoint_every=args.checkpoint_every,
            checkpoint_dir=args.checkpoint_dir,
        )

    if args.scenario is not None:
        if (
            args.experiment_ids
            or args.all
            or args.full
            or args.csv
            or args.jobs is not None
            or args.store is not None
            or args.resume
        ):
            parser.error(
                "--scenario cannot be combined with experiment ids, "
                "--all, --full, --csv, or the sweep flags "
                "(--jobs/--store/--resume)"
            )
        return run_scenario_file(
            args.scenario,
            seed=args.seed,
            backend=args.backend,
            checkpoint_every=args.checkpoint_every,
            checkpoint_dir=args.checkpoint_dir,
        )

    if args.sweep is not None:
        if args.experiment_ids or args.all or args.full or args.csv:
            parser.error(
                "--sweep cannot be combined with experiment ids, "
                "--all, --full, or --csv"
            )
        return run_sweep_file(
            args.sweep,
            backend=args.backend,
            jobs=args.jobs,
            store=args.store,
            resume=args.resume or None,
        )

    if args.list or (not args.experiment_ids and not args.all):
        for experiment in all_experiments():
            print(
                f"{experiment.experiment_id}: {experiment.title}"
                f"  [{experiment.paper_reference}]"
            )
        return 0

    ids = (
        [e.experiment_id for e in all_experiments()]
        if args.all
        else args.experiment_ids
    )
    failures = 0
    for experiment_id in ids:
        result = run_experiment(
            experiment_id,
            quick=not args.full,
            seed=args.seed,
            backend=args.backend,
            jobs=args.jobs,
            store=args.store,
            resume=args.resume or None,
            checkpoint_every=args.checkpoint_every,
            checkpoint_dir=args.checkpoint_dir,
        )
        print(result.to_text())
        if args.csv:
            path = result.write_csv(args.csv)
            print(f"csv: {path}")
        print()
        if not result.passed():
            failures += 1
    if failures:
        print(f"{failures} experiment(s) had failing verdict entries")
    return 1 if failures else 0


def run_sweep_file(
    path: str,
    backend: str | None = None,
    jobs: int | None = None,
    store: str | None = None,
    resume: bool | None = None,
) -> int:
    """Run one JSON sweep document and print its cell values as JSON."""
    from dataclasses import replace
    from pathlib import Path

    from repro.sweep import SweepSpec, run_sweep

    sweep = SweepSpec.from_json(Path(path).read_text(encoding="utf-8"))
    if backend is not None:
        sweep = replace(sweep, base=sweep.base.with_(backend=backend))

    result = run_sweep(sweep, jobs=jobs, store=store, resume=resume)
    failures = result.failures
    print(f"sweep: {path}", file=sys.stderr)
    print(
        f"cells: {len(result.cells)} "
        f"(executed {result.executed}, cached {result.from_cache}, "
        f"failed {len(failures)})",
        file=sys.stderr,
    )
    for cell_result in failures:
        print(
            f"FAILED cell {cell_result.index} "
            f"{dict(cell_result.cell.overrides)!r}:\n{cell_result.error}",
            file=sys.stderr,
        )
    if not failures:
        # The machine-readable payload (stdout): canonical grid order.
        print(json.dumps(result.values(), indent=2, default=str))
    return 1 if failures else 0


def run_scenario_file(
    path: str,
    seed: int | None = None,
    backend: str | None = None,
    checkpoint_every: int | None = None,
    checkpoint_dir: str | None = None,
) -> int:
    """Run one JSON scenario document and print its report."""
    from repro.scenario import Simulation, load_scenario_document

    document = load_scenario_document(path)
    spec = document.spec
    if backend is not None:
        spec = spec.with_(backend=backend)
    # The file's own seed wins; the CLI seed fills in when absent.
    if spec.seed is None and seed is not None:
        spec = spec.with_(seed=seed)

    print(f"scenario: {path}")
    print(spec.to_json())
    simulation = Simulation(
        spec,
        observers=document.observers,
        checkpoint_every=checkpoint_every,
        checkpoint_dir=checkpoint_dir,
    )
    simulation.run()
    return _report_session(simulation, flood=document.should_flood)


def run_restore(
    source: str,
    checkpoint_every: int | None = None,
    checkpoint_dir: str | None = None,
) -> int:
    """Resume a checkpointed session and run it to its spec horizon."""
    from repro.scenario import Simulation

    simulation = Simulation.restore(
        source,
        checkpoint_every=checkpoint_every,
        checkpoint_dir=checkpoint_dir,
    )
    print(f"restored: {simulation.restored_from}")
    print(
        f"resuming at t={simulation.network.now:g} "
        f"({simulation.rounds_completed} rounds already run, "
        f"horizon {simulation.spec.horizon:g})"
    )
    print(simulation.spec.to_json())
    simulation.run()
    return _report_session(
        simulation, flood=simulation.spec.protocol is not None
    )


def _report_session(simulation, flood: bool) -> int:
    """Print a finished session's report (shared by run and restore)."""
    flood_failed = False
    if flood:
        result = simulation.flood()
        status = (
            f"completed in {result.completion_round} rounds"
            if result.completed
            else ("extinct" if result.extinct else "incomplete")
        )
        flood_failed = not result.completed
        print(
            f"flooding [{simulation.spec.protocol}]: {status}; "
            f"informed {result.final_informed}/{result.final_network_size} "
            f"(peak {result.max_informed})"
        )
    observations = simulation.results()
    if observations:
        print("observers:")
        print(json.dumps(observations, indent=2, sort_keys=True, default=str))
    print(
        f"network: {simulation.network.num_alive()} alive at "
        f"t={simulation.network.now:g} ({simulation.rounds_completed} rounds run)"
    )
    # Mirror the experiment runner's contract: exit 1 when the scenario's
    # broadcast did not complete, so CI can gate on JSON scenarios.
    return 1 if flood_failed else 0


if __name__ == "__main__":
    sys.exit(main())
