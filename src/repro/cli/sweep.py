"""``sweep`` subcommands: the fleet lifecycle from a terminal.

Thin argparse adapters over :mod:`repro.api.sweeps` — one subcommand
per API call:

``sweep run SPEC --store DIR [--workers N]``
    :func:`~repro.api.run_fleet`: submit, drain with N local worker
    processes, reduce, write the artifact.  ``--workers 1`` is the
    sequential baseline every other execution shape must match byte
    for byte.

``sweep worker SPEC --store DIR``
    :func:`~repro.api.run_worker`: claim and execute pending cells
    until none are claimable.  Start one per terminal/host against a
    shared store; each prints what it did.

``sweep reduce SPEC --store DIR [--timeout S]``
    :func:`~repro.api.collect`: poll the store until the grid is
    complete, then write ``<store>/sweeps/<key>.json`` and print its
    digest.

``sweep status SPEC --store DIR``
    :func:`~repro.api.sweep_status`: a read-only census (exit 0 when
    complete, 1 while cells remain — pollable from shell loops).

``sweep gc --store DIR [--yes]``
    :func:`~repro.api.gc_store`: prune result cells no submitted
    ``sweeps/*.spec.json`` can reach.  Dry-run by default (prints the
    JSON summary of what *would* go); ``--yes`` deletes and reports
    the reclaimed bytes.

``SPEC`` is either a JSON sweep document (a file path) or the bare
64-hex sweep key of an already-submitted sweep — workers on other
hosts need only the key and the shared store.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

from repro.api import (
    DEFAULT_CLAIM_BATCH,
    collect,
    gc_store,
    load_submission,
    run_fleet,
    run_worker,
    sweep_status,
)
from repro.core.backend import BACKEND_NAMES
from repro.errors import SweepError
from repro.sweep import DEFAULT_CLAIM_TTL, SweepSpec
from repro.sweep.artifact import artifact_path

_KEY_RE = re.compile(r"[0-9a-f]{64}")


def _resolve_spec(source: str) -> SweepSpec | str:
    """A SPEC operand: an on-disk sweep document, or a bare sweep key."""
    path = Path(source)
    if path.exists():
        return SweepSpec.from_json(path.read_text(encoding="utf-8"))
    if _KEY_RE.fullmatch(source):
        return source  # the API rehydrates it via load_submission
    raise SweepError(
        f"SPEC {source!r} is neither a readable sweep document nor a "
        "64-hex sweep key"
    )


def _add_common(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "spec",
        metavar="SPEC",
        help="JSON sweep document, or the 64-hex key of a submitted sweep",
    )
    sub.add_argument(
        "--store",
        metavar="DIR",
        required=True,
        help="shared content-addressed result store (all hosts point here)",
    )
    sub.add_argument(
        "--backend",
        choices=list(BACKEND_NAMES),
        default=None,
        help="topology backend (default: the spec's, else REPRO_BACKEND, "
        "else dict) — every host of one sweep must agree",
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments sweep",
        description="Fleet-scale sweep execution against a shared store.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run_p = commands.add_parser(
        "run", help="submit, execute with N local workers, and reduce"
    )
    _add_common(run_p)
    run_p.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="local worker processes (default 1 = sequential)",
    )
    run_p.add_argument(
        "--ttl", type=float, default=DEFAULT_CLAIM_TTL, metavar="S",
        help="cell claim time-to-live in seconds "
        f"(default {DEFAULT_CLAIM_TTL:g})",
    )
    run_p.add_argument(
        "--values", action="store_true",
        help="print the cell values (canonical order) instead of the "
        "artifact summary",
    )
    run_p.add_argument(
        "--claim-batch", type=int, default=DEFAULT_CLAIM_BATCH, metavar="K",
        help="cells each worker claims per grid scan "
        f"(default {DEFAULT_CLAIM_BATCH})",
    )

    worker_p = commands.add_parser(
        "worker", help="claim and execute pending cells of one sweep"
    )
    _add_common(worker_p)
    worker_p.add_argument(
        "--ttl", type=float, default=DEFAULT_CLAIM_TTL, metavar="S",
        help="claim time-to-live; must exceed the slowest cell "
        f"(default {DEFAULT_CLAIM_TTL:g})",
    )
    worker_p.add_argument(
        "--max-cells", type=int, default=None, metavar="N",
        help="execute at most N cells, then return (preemptible workers)",
    )
    worker_p.add_argument(
        "--wait", type=float, default=None, metavar="S",
        help="when nothing is claimable but cells remain, keep rescanning "
        "for up to S seconds (takes over expired claims) instead of "
        "returning immediately",
    )
    worker_p.add_argument(
        "--host", default=None, metavar="ID",
        help="claim owner identity (default: hostname:pid)",
    )
    worker_p.add_argument(
        "--claim-batch", type=int, default=DEFAULT_CLAIM_BATCH, metavar="K",
        help="cells claimed per grid scan — bulk claims amortize store "
        f"scans across a fleet (default {DEFAULT_CLAIM_BATCH})",
    )

    reduce_p = commands.add_parser(
        "reduce", help="wait for a complete grid, then write the artifact"
    )
    _add_common(reduce_p)
    reduce_p.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="give up after S seconds of polling (default: wait forever; "
        "0 demands completeness right now)",
    )
    reduce_p.add_argument(
        "--poll", type=float, default=0.5, metavar="S",
        help="seconds between store scans while waiting (default 0.5)",
    )

    status_p = commands.add_parser(
        "status", help="report done/claimed/pending cell counts"
    )
    _add_common(status_p)
    status_p.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the census as JSON on stdout",
    )

    gc_p = commands.add_parser(
        "gc", help="prune cells unreachable from any submitted sweep"
    )
    gc_p.add_argument(
        "--store",
        metavar="DIR",
        required=True,
        help="shared content-addressed result store to clean",
    )
    gc_p.add_argument(
        "--yes", action="store_true",
        help="actually delete (default: dry-run, print what would go)",
    )

    args = parser.parse_args(argv)
    try:
        if args.command == "gc":
            return _cmd_gc(args)
        spec = _resolve_spec(args.spec)
        return _COMMANDS[args.command](args, spec)
    except SweepError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def _cmd_run(args: argparse.Namespace, spec: SweepSpec | str) -> int:
    if isinstance(spec, str):
        submission = load_submission(args.store, spec)
        sweep, backend = submission.sweep, submission.backend
    else:
        sweep, backend = spec, args.backend
    result = run_fleet(
        sweep,
        args.store,
        workers=args.workers,
        backend=backend,
        ttl=args.ttl,
        claim_batch=args.claim_batch,
    )
    print(
        f"sweep {result.key[:12]}… complete: {len(result.values)} cells, "
        f"{args.workers} worker(s)",
        file=sys.stderr,
    )
    if args.values:
        print(json.dumps(list(result.values), indent=2))
    else:
        print(
            json.dumps(
                {
                    "key": result.key,
                    "digest": result.digest,
                    "artifact": str(artifact_path(args.store, result.key)),
                    "cells": len(result.values),
                },
                indent=2,
            )
        )
    return 0


def _cmd_worker(args: argparse.Namespace, spec: SweepSpec | str) -> int:
    report = run_worker(
        args.store,
        spec,
        backend=args.backend,
        host=args.host,
        ttl=args.ttl,
        max_cells=args.max_cells,
        wait=args.wait,
        claim_batch=args.claim_batch,
    )
    print(
        f"worker {report.host} on sweep {report.key[:12]}…: "
        f"executed {len(report.executed)}, cached {report.cached}, "
        f"lost {report.lost_claims} claim race(s), "
        f"{len(report.failures)} failure(s) in {report.elapsed:.2f}s",
        file=sys.stderr,
    )
    for index, error in report.failures:
        print(f"FAILED cell {index}:\n{error}", file=sys.stderr)
    return 1 if report.failures else 0


def _cmd_reduce(args: argparse.Namespace, spec: SweepSpec | str) -> int:
    result = collect(
        args.store,
        spec,
        backend=args.backend,
        timeout=args.timeout,
        poll=args.poll,
    )
    print(
        json.dumps(
            {
                "key": result.key,
                "digest": result.digest,
                "artifact": str(artifact_path(args.store, result.key)),
                "cells": len(result.values),
            },
            indent=2,
        )
    )
    return 0


def _cmd_status(args: argparse.Namespace, spec: SweepSpec | str) -> int:
    status = sweep_status(args.store, spec, backend=args.backend)
    if args.as_json:
        print(
            json.dumps(
                {
                    "key": status.key,
                    "total": status.total,
                    "done": status.done,
                    "claimed": status.claimed,
                    "pending": status.pending,
                    "complete": status.complete,
                },
                indent=2,
            )
        )
    else:
        print(
            f"sweep {status.key[:12]}…: {status.done}/{status.total} done, "
            f"{status.claimed} claimed, {status.pending} pending"
        )
    return 0 if status.complete else 1


def _cmd_gc(args: argparse.Namespace) -> int:
    summary = gc_store(args.store, yes=args.yes)
    if not args.yes and summary["unreachable_cells"]:
        print(
            f"dry-run: {summary['unreachable_cells']} unreachable cell(s), "
            f"{summary['reclaimed_bytes']} bytes — pass --yes to delete",
            file=sys.stderr,
        )
    print(json.dumps(summary, indent=2))
    return 0


# gc is dispatched before SPEC resolution (it has no SPEC operand).
_COMMANDS = {
    "run": _cmd_run,
    "worker": _cmd_worker,
    "reduce": _cmd_reduce,
    "status": _cmd_status,
}


if __name__ == "__main__":
    sys.exit(main())
