"""``python -m repro.cli`` — same surface as ``python -m repro.experiments``."""

import sys

from repro.cli.main import main

if __name__ == "__main__":
    sys.exit(main())
