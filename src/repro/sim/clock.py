"""Simulation clock.

A tiny monotone clock shared between a network driver and any process
(flooding, gossip) observing it.  Keeping it as an object rather than a bare
float lets several components hold a reference to the same advancing time.
"""

from __future__ import annotations

from repro.errors import SimulationError


class SimClock:
    """Monotonically non-decreasing simulation time."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance_to(self, t: float) -> None:
        """Move the clock forward to absolute time *t*."""
        if t < self._now:
            raise SimulationError(
                f"clock cannot move backwards: now={self._now}, requested={t}"
            )
        self._now = float(t)

    def advance_by(self, dt: float) -> None:
        """Move the clock forward by *dt* (must be non-negative)."""
        if dt < 0:
            raise SimulationError(f"negative time step: {dt}")
        self._now += float(dt)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now})"
