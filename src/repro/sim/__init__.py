"""Discrete-event simulation substrate.

The continuous-time (Poisson) models and the asynchronous flooding process
are driven by a small priority-queue event engine.  The streaming models do
not need it (their churn is a deterministic round structure), but share the
event record types for uniform trace output.
"""

from repro.sim.clock import SimClock
from repro.sim.engine import EventEngine, ScheduledEvent
from repro.sim.events import (
    EdgeCreated,
    EdgeDestroyed,
    EventRecord,
    NodeBorn,
    NodeDied,
)

__all__ = [
    "EdgeCreated",
    "EdgeDestroyed",
    "EventEngine",
    "EventRecord",
    "NodeBorn",
    "NodeDied",
    "ScheduledEvent",
    "SimClock",
]
