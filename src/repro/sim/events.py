"""Event record types emitted by the dynamic-network drivers.

Each churn event (a node birth or death) produces one :class:`EventRecord`
describing exactly which topology changes it caused.  The asynchronous
flooding process consumes these records to learn about newly created edges
incident to informed nodes; experiment code consumes them for tracing.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class EdgeCreated:
    """An undirected edge appeared, requested by *source* towards *target*."""

    source: int
    target: int

    def endpoints(self) -> tuple[int, int]:
        return (self.source, self.target)


@dataclass(frozen=True)
class EdgeDestroyed:
    """An undirected edge disappeared (because one endpoint died)."""

    source: int
    target: int

    def endpoints(self) -> tuple[int, int]:
        return (self.source, self.target)


@dataclass(frozen=True)
class NodeBorn:
    """A node joined the network and issued its initial edge requests."""

    node_id: int


@dataclass(frozen=True)
class NodeDied:
    """A node left the network; all its incident edges disappeared."""

    node_id: int


@dataclass(frozen=True)
class NodesBorn:
    """A batch of nodes joined the network in one application (batched churn)."""

    node_ids: tuple[int, ...]


@dataclass(frozen=True)
class NodesDied:
    """A batch of nodes left the network simultaneously (batched churn)."""

    node_ids: tuple[int, ...]


@dataclass
class EventRecord:
    """One churn event and the topology delta it caused.

    Attributes:
        time: simulation time at which the event occurred.
        kind: a :class:`NodeBorn` / :class:`NodeDied` marker, or a
            :class:`NodesBorn` / :class:`NodesDied` marker for one batched
            churn application.
        edges_created: edges that appeared as a consequence (the newborn's
            requests, or regenerated replacement edges after a death).
            Batched-birth records leave this empty — the backend applies
            the slots directly without per-edge bookkeeping.
        edges_destroyed: edges that disappeared (all edges incident to a
            dying node; empty for births).
    """

    time: float
    kind: NodeBorn | NodeDied | NodesBorn | NodesDied
    edges_created: list[EdgeCreated] = field(default_factory=list)
    edges_destroyed: list[EdgeDestroyed] = field(default_factory=list)

    @property
    def is_birth(self) -> bool:
        return isinstance(self.kind, (NodeBorn, NodesBorn))

    @property
    def is_death(self) -> bool:
        return isinstance(self.kind, (NodeDied, NodesDied))

    @property
    def node_id(self) -> int:
        if isinstance(self.kind, (NodesBorn, NodesDied)):
            raise ValueError("batched record has no single node_id; use node_ids")
        return self.kind.node_id

    @property
    def node_ids(self) -> tuple[int, ...]:
        """The affected node ids (one entry for single-node kinds)."""
        if isinstance(self.kind, (NodesBorn, NodesDied)):
            return self.kind.node_ids
        return (self.kind.node_id,)
