"""Priority-queue event engine.

Used by the asynchronous flooding process (Definition 4.2), which must
interleave message deliveries (scheduled one time unit after transmission)
with the churn events produced by the network driver.  The engine is a thin
wrapper over :mod:`heapq` with stable FIFO tie-breaking and cancellation.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import SimulationError


@dataclass(order=True)
class ScheduledEvent:
    """An event in the queue, ordered by (time, insertion sequence)."""

    time: float
    sequence: int
    payload: Any = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventEngine:
    """A min-heap of timestamped payloads with O(log n) push/pop.

    The engine does not own a clock: callers pop events and advance their
    own clock to the popped timestamps, which makes it easy to interleave
    with an external event source (the jump-chain churn process).
    """

    def __init__(self) -> None:
        self._heap: list[ScheduledEvent] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def schedule(self, time: float, payload: Any) -> ScheduledEvent:
        """Insert *payload* at *time*; returns a handle usable for cancel()."""
        event = ScheduledEvent(time=float(time), sequence=next(self._counter), payload=payload)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def cancel(self, event: ScheduledEvent) -> None:
        """Lazily cancel a scheduled event (skipped when popped)."""
        if not event.cancelled:
            event.cancelled = True
            self._live -= 1

    def peek_time(self) -> float | None:
        """Earliest pending event time, or None if the queue is empty."""
        self._drop_cancelled()
        if not self._heap:
            return None
        return self._heap[0].time

    def pop(self) -> ScheduledEvent:
        """Remove and return the earliest pending event."""
        self._drop_cancelled()
        if not self._heap:
            raise SimulationError("pop() on an empty event queue")
        event = heapq.heappop(self._heap)
        self._live -= 1
        return event

    def pop_until(self, time: float) -> list[ScheduledEvent]:
        """Pop all events with timestamp <= *time*, in order."""
        out: list[ScheduledEvent] = []
        while True:
            next_time = self.peek_time()
            if next_time is None or next_time > time:
                return out
            out.append(self.pop())

    def run(self, handler: Callable[[ScheduledEvent], None], until: float) -> int:
        """Dispatch events to *handler* until the queue is empty or *until*.

        Returns the number of events dispatched.  The handler may schedule
        further events.
        """
        dispatched = 0
        while True:
            next_time = self.peek_time()
            if next_time is None or next_time > until:
                return dispatched
            handler(self.pop())
            dispatched += 1

    def dump_pending(self) -> list[tuple[float, int, Any]]:
        """Serialize the pending queue as sorted (time, sequence, payload).

        Sequences are preserved verbatim — they break equal-time ties, so
        a restored engine must pop simultaneous events in the original
        insertion order.  Payloads must be JSON-able for checkpointing.
        """
        return [
            (event.time, event.sequence, event.payload)
            for event in sorted(self._heap)
            if not event.cancelled
        ]

    def restore_pending(self, entries: list) -> None:
        """Rebuild the queue from :meth:`dump_pending` output.

        The insertion counter resumes past the largest pending sequence:
        relative order among pending events is preserved exactly, and any
        newly scheduled event sorts after all pending ones at equal times
        — the same order an uninterrupted run would produce.
        """
        self._heap = [
            ScheduledEvent(time=float(t), sequence=int(seq), payload=payload)
            for t, seq, payload in entries
        ]
        heapq.heapify(self._heap)
        self._live = len(self._heap)
        next_sequence = max((e.sequence for e in self._heap), default=-1) + 1
        self._counter = itertools.count(next_sequence)

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
