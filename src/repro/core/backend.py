"""Pluggable topology backends.

A :class:`GraphBackend` owns the mutable node/slot/adjacency state of one
dynamic network.  Two implementations ship with the library:

* :class:`~repro.core.graph.DictBackend` — the original dict-of-dicts
  state; simple, fully introspectable, and the reference implementation
  for invariant checking (``DynamicGraphState`` remains an alias);
* :class:`~repro.core.array_backend.ArraySlotBackend` — a dense NumPy
  slot store with free-list row recycling, batched births, and a
  vectorized flooding frontier; the same seeded churn trajectory as the
  dict backend on the per-event path, and ~10–20× faster end-to-end on
  the batched churn+flooding hot loop.

Both backends keep the alive set in the same
:class:`~repro.util.sampling.IndexedSet` structure, so uniform sampling
consumes the RNG identically: seeded *churn trajectories* (births, deaths,
regenerated edges, snapshots) and the :func:`flood_discrete` /
:func:`flood_discretized` processes are bit-identical on either backend
(the cross-backend parity property tests rely on this).  Processes that
draw randomness per *neighbour list* (push/pull gossip, lossy flooding,
token walks) are distribution-equivalent but not trajectory-identical,
because the backends enumerate neighbours in different orders.

Backend selection: pass ``backend="dict"`` / ``"array"`` to any driver, or
set the ``REPRO_BACKEND`` environment variable to change the default for a
whole process (this is how CI runs the suite on both backends), or use the
:func:`use_backend` context manager to override the default temporarily
(this is how the experiment registry threads the choice through runners
without changing every experiment signature).
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.core.csr import CSRView, csr_view_from_adjacency
from repro.core.node import NodeRecord
from repro.core.snapshot import Snapshot
from repro.errors import ConfigurationError
from repro.util.sampling import IndexedSet

#: Names accepted by :func:`create_backend` / ``REPRO_BACKEND``.
BACKEND_NAMES = ("dict", "array")

_ENV_VAR = "REPRO_BACKEND"
# A ContextVar (not a module global) so concurrent use_backend scopes —
# threads or asyncio tasks running experiments in parallel — cannot leak
# their override into each other.
_override: ContextVar[str | None] = ContextVar("repro_backend_override", default=None)


class GraphBackend(ABC):
    """Mutable topology state of a dynamic network at one instant.

    The backend tracks the alive-node set (with O(1) uniform sampling),
    per-node out-request slots, the reverse slot index (what makes deaths
    O(degree)), and the undirected adjacency with multiplicities.  It is
    policy-agnostic: birth/death/regeneration *decisions* live in
    :mod:`repro.core.edge_policy`; the backend only applies topology
    deltas and maintains invariants.
    """

    def __init__(self) -> None:
        self.alive = IndexedSet()
        self._next_id = 0
        self._mutation_epoch = 0
        self._touched: set[int] | None = None

    # ------------------------------------------------------------------
    # mutation tracking (the incremental analysis plane's dirty set)
    # ------------------------------------------------------------------

    def mutation_epoch(self) -> int:
        """Monotone counter, bumped once per topology mutation.

        Two equal epochs guarantee the topology has not changed in
        between; this is what lets cached analyses (CSR rebuilds, the
        incremental :class:`~repro.analysis.incremental.ProbeCache`)
        skip work without inspecting the graph.
        """
        return self._mutation_epoch

    def track_mutations(self) -> None:
        """Start accumulating the ids of nodes touched by mutations.

        Idempotent.  Once enabled, every mutation records the node ids
        whose incident topology it changed — for an edge change both
        endpoints, for a death the dead node plus every former
        neighbour, for a birth the newborn plus its targets — until
        :meth:`drain_touched` collects them.  Tracking costs one set
        update per mutation and nothing when disabled.
        """
        if self._touched is None:
            self._touched = set()

    def drain_touched(self) -> set[int]:
        """Return and reset the ids touched since the last drain.

        The returned set is a conservative dirty set: any node whose
        incident edges, existence, or neighbourhood membership changed
        since the previous drain appears in it (possibly alongside ids
        that have since died).  Requires :meth:`track_mutations`.
        """
        if self._touched is None:
            raise ConfigurationError(
                "drain_touched() needs track_mutations() enabled first"
            )
        touched = self._touched
        self._touched = set()
        return touched

    def _note_mutation(self, ids: Iterable[int] = ()) -> None:
        """Bump the epoch; record *ids* as touched when tracking."""
        self._mutation_epoch += 1
        if self._touched is not None:
            self._touched.update(ids)

    # ------------------------------------------------------------------
    # basic queries (shared: both backends keep `alive` as an IndexedSet)
    # ------------------------------------------------------------------

    def num_alive(self) -> int:
        return len(self.alive)

    def alive_ids(self) -> list[int]:
        """Snapshot list of alive node ids (internal order)."""
        return self.alive.as_list()

    def is_alive(self, node_id: int) -> bool:
        return node_id in self.alive

    def allocate_id(self) -> int:
        """Reserve the next node id (birth order)."""
        node_id = self._next_id
        self._next_id += 1
        return node_id

    def peek_next_id(self) -> int:
        """The id the next :meth:`allocate_id` call will return.

        Lets batched drivers pre-compute prospective newborn ids without
        committing the allocation (the threshold window fuser commits
        only the verified prefix of a window's births).
        """
        return self._next_id

    def allocate_ids(self, count: int) -> list[int]:
        """Reserve *count* consecutive node ids (for batched births)."""
        first = self._next_id
        self._next_id += count
        return list(range(first, self._next_id))

    def ensure_id_floor(self, next_id: int) -> None:
        """Guarantee future :meth:`allocate_id` calls return >= *next_id*.

        Used by externally-driven drivers (trace replay) whose node ids
        come from the input rather than the allocator.
        """
        self._next_id = max(self._next_id, int(next_id))

    # ------------------------------------------------------------------
    # state serialization (service plane)
    # ------------------------------------------------------------------

    def dump_state(self) -> dict:
        """Serialize the full mutable backend state to a JSON-able dict.

        The payload must capture everything that influences future
        seeded trajectories — including iteration orders that feed RNG
        draws (alive-set order, adjacency order) — so that
        :meth:`restore_state` reproduces the run bit-identically.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support checkpointing"
        )

    def restore_state(self, payload: dict) -> None:
        """Restore state previously produced by :meth:`dump_state`."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support checkpointing"
        )

    # ------------------------------------------------------------------
    # abstract topology interface
    # ------------------------------------------------------------------

    @abstractmethod
    def neighbors(self, node_id: int) -> Iterable[int]:
        """Current undirected neighbours of *node_id*."""

    @abstractmethod
    def degree(self, node_id: int) -> int:
        """Undirected degree (number of distinct neighbours)."""

    @abstractmethod
    def num_edges(self) -> int:
        """Number of distinct undirected edges."""

    @abstractmethod
    def record(self, node_id: int) -> NodeRecord:
        """Per-node record (backends may synthesize it on demand)."""

    @abstractmethod
    def birth_time(self, node_id: int) -> float:
        """Birth time of an alive node."""

    @abstractmethod
    def out_slots_of(self, node_id: int) -> list[int | None]:
        """Current out-request destinations of an alive node."""

    @abstractmethod
    def in_slot_count(self, node_id: int) -> int:
        """Number of slots of other nodes currently pointing here."""

    @abstractmethod
    def add_node(self, node_id: int, birth_time: float, num_slots: int) -> NodeRecord:
        """Register a newborn with *num_slots* empty out-slots."""

    @abstractmethod
    def assign_slot(self, source: int, slot_index: int, target: int) -> None:
        """Point ``source``'s slot *slot_index* at *target* (must be empty)."""

    @abstractmethod
    def clear_slot(self, source: int, slot_index: int) -> int | None:
        """Empty ``source``'s slot *slot_index*; returns the old target."""

    @abstractmethod
    def remove_node(self, node_id: int, death_time: float) -> list[tuple[int, int]]:
        """Kill *node_id*; returns the orphaned ``(source, slot)`` pairs."""

    @abstractmethod
    def snapshot(self, time: float) -> Snapshot:
        """Freeze the current topology into an immutable :class:`Snapshot`."""

    def csr_view(self, time: float) -> CSRView:
        """Export the current topology as a :class:`~repro.core.csr.CSRView`.

        The analysis-plane counterpart of :meth:`snapshot`: a compact CSR
        adjacency plus id/birth arrays that the vectorized analyses run
        on.  The generic implementation builds the arrays in one pass
        over :meth:`neighbors`; the array backend overrides it with a
        zero-copy export of its dense row arrays.  A view aliases live
        state — it is valid only until the next topology mutation.
        """
        return csr_view_from_adjacency(
            time=time,
            ids=self.alive_ids(),
            neighbors_fn=self.neighbors,
            birth_fn=self.birth_time,
        )

    @abstractmethod
    def check_invariants(self) -> None:
        """Raise :class:`SimulationError` if internal indices disagree."""

    # ------------------------------------------------------------------
    # sampling (identical RNG consumption on every backend)
    # ------------------------------------------------------------------

    def sample_targets(
        self, rng: np.random.Generator, k: int, exclude: int
    ) -> list[int]:
        """Sample *k* destinations uniformly (with replacement), never *exclude*.

        Mirrors the paper's edge-creation rule: each of the ``d`` requests
        independently picks a uniformly random node of the current network.
        Returns fewer than *k* ids (possibly none) when no candidate exists.
        """
        return self.alive.sample_many(rng, k, exclude=exclude)

    def sample_alive(self, rng: np.random.Generator) -> int:
        """Uniformly random alive node (the Poisson death rule)."""
        return self.alive.sample(rng)

    # ------------------------------------------------------------------
    # derived queries with generic implementations
    # ------------------------------------------------------------------

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge {u, v} currently exists."""
        return v in set(self.neighbors(u))

    def random_neighbor(
        self, node_id: int, rng: np.random.Generator
    ) -> int | None:
        """Uniformly random current neighbour, or None if isolated."""
        keys = list(self.neighbors(node_id))
        if not keys:
            return None
        return keys[int(rng.integers(0, len(keys)))]

    def youngest_alive(self) -> int:
        """The most recently born alive node (flooding's default source)."""
        alive = self.alive_ids()
        if not alive:
            raise ConfigurationError("network has no alive nodes")
        return max(alive, key=self.birth_time)

    def degree_vector(self) -> np.ndarray:
        """Undirected degrees aligned with :meth:`alive_ids` order."""
        return np.array([self.degree(u) for u in self.alive_ids()], dtype=np.int64)

    def boundary_of(self, nodes: Iterable[int]) -> set[int]:
        """``∂out(S)``: alive nodes outside *nodes* adjacent to it."""
        inside = set(nodes)
        boundary: set[int] = set()
        for u in inside:
            boundary.update(self.neighbors(u))
        return boundary - inside

    # ------------------------------------------------------------------
    # batched churn (generic per-node fallback; array backend vectorizes)
    # ------------------------------------------------------------------

    #: True when :func:`flood_discrete` should use the mask-based frontier.
    supports_vectorized_frontier: bool = False

    #: True when the backend implements ``place_slots_capped`` — the bulk
    #: accept/reject sampler the bounded-degree edge policies batch onto.
    supports_bulk_placement: bool = False

    def add_nodes(
        self,
        node_ids: Sequence[int],
        times: Sequence[float] | float,
        num_slots: int,
    ) -> None:
        """Register a batch of newborns with empty out-slots (no sampling).

        The generic implementation loops :meth:`add_node`; the array
        backend registers the whole batch in a few vectorized writes.
        Batched birth paths (``apply_births``, the bounded policies'
        ``handle_births``) build on this.
        """
        times_list = self.birth_times_list(node_ids, times)
        for node_id, birth_time in zip(node_ids, times_list):
            self.add_node(node_id, birth_time=birth_time, num_slots=num_slots)

    def apply_births(
        self,
        node_ids: Sequence[int],
        times: Sequence[float] | float,
        num_slots: int,
        rng: np.random.Generator,
    ) -> None:
        """Apply a pure-birth batch: each newborn issues ``num_slots`` uniform
        requests among the nodes present when it joins (earlier newborns of
        the same batch included, itself excluded) — the base
        :meth:`~repro.core.edge_policy.EdgePolicy.handle_birth` semantics
        without event records.

        The generic implementation loops per node and consumes the RNG
        exactly like the per-event path; vectorized backends draw the same
        distribution in bulk (same law, different stream consumption).
        """
        times_list = self.birth_times_list(node_ids, times)
        for node_id, birth_time in zip(node_ids, times_list):
            self.add_node(node_id, birth_time=birth_time, num_slots=num_slots)
            for slot_index, target in enumerate(
                self.sample_targets(rng, num_slots, exclude=node_id)
            ):
                self.assign_slot(node_id, slot_index, target)

    def apply_birth_slots(
        self,
        node_ids: Sequence[int],
        times: Sequence[float] | float,
        targets: np.ndarray,
    ) -> None:
        """Apply a pure-birth batch with *pre-drawn* target ids.

        ``targets`` is a ``(len(node_ids), d)`` array of destination node
        ids (−1 = leave the slot empty); row ``k`` may reference earlier
        newborns of the same batch.  Unlike :meth:`apply_births` no
        randomness is consumed here — the caller drew the targets from a
        canonical plan, which is what makes fused windows bit-identical
        across backends.  The generic implementation loops
        :meth:`add_node`/:meth:`assign_slot`; the array backend scatters
        the batch in vectorized writes.
        """
        targets = np.asarray(targets, dtype=np.int64)
        times_list = self.birth_times_list(node_ids, times)
        num_slots = targets.shape[1] if targets.ndim == 2 else 0
        for k, (node_id, birth_time) in enumerate(zip(node_ids, times_list)):
            self.add_node(node_id, birth_time=birth_time, num_slots=num_slots)
            for slot_index in range(num_slots):
                target = int(targets[k, slot_index])
                if target >= 0:
                    self.assign_slot(node_id, slot_index, target)

    def apply_deaths(
        self, node_ids: Sequence[int], death_time: float
    ) -> list[tuple[int, int]]:
        """Remove a batch of nodes; returns orphaned slots of *survivors*.

        Orphans whose owner also died within the batch are dropped (their
        slots vanished with the owner), so the caller's edge policy can
        repair the returned list directly.
        """
        orphans: list[tuple[int, int]] = []
        for node_id in node_ids:
            orphans.extend(self.remove_node(node_id, death_time=death_time))
        return [(s, j) for s, j in orphans if self.is_alive(s)]

    # ------------------------------------------------------------------
    # fused streaming rounds (death → regeneration → birth per round)
    # ------------------------------------------------------------------

    #: True when the backend implements :meth:`apply_round_batch` — the
    #: fused streaming-round kernel behind ``fast_rounds``.
    supports_round_batch: bool = False

    def apply_round_batch(
        self,
        base: int,
        rounds: int,
        num_slots: int,
        start_time: float,
        plan,
        regenerate: bool,
    ) -> None:
        """Execute *rounds* fused streaming rounds in one pass.

        Precondition: the alive set is exactly the contiguous id range
        ``[base, base + n)`` (``n`` = ``plan.n``), every alive node has
        ``num_slots`` slots, and ids ``base + n .. base + n + rounds - 1``
        are already allocated.  Round ``k`` (1-based) at time
        ``start_time + k``: node ``base + k - 1`` dies, each orphaned
        slot re-targets via ``plan.take_regen`` when *regenerate* (else
        stays empty), then node ``base + n + k - 1`` is born with
        ``num_slots`` requests addressed by ``plan.birth_offsets[k-1]``
        (offset ``v`` = the ``v``-th oldest post-death survivor).

        After the window both backends leave the alive set in ascending
        id order, so subsequent per-event draws stay bit-identical across
        backends too.  See :mod:`repro.core.round_batch` for the draw
        law; implementations must consume the plan in the documented
        orphan order.
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no fused streaming-round kernel"
        )

    @staticmethod
    def birth_times_list(
        node_ids: Sequence[int], times: Sequence[float] | float
    ) -> list[float]:
        if np.isscalar(times):
            return [float(times)] * len(node_ids)
        times_list = [float(t) for t in np.asarray(times).ravel()]
        if len(times_list) != len(node_ids):
            raise ConfigurationError(
                f"{len(node_ids)} births but {len(times_list)} birth times"
            )
        return times_list


# ----------------------------------------------------------------------
# backend selection
# ----------------------------------------------------------------------


def default_backend_name() -> str:
    """The process-wide default backend name.

    Resolution order: :func:`use_backend` override, then the
    ``REPRO_BACKEND`` environment variable, then ``"dict"``.
    """
    override = _override.get()
    if override is not None:
        return override
    name = os.environ.get(_ENV_VAR, "dict").strip() or "dict"
    return name


def _validate_name(name: str) -> str:
    if name not in BACKEND_NAMES:
        raise ConfigurationError(
            f"unknown graph backend {name!r}; choose from {BACKEND_NAMES}"
        )
    return name


@contextmanager
def use_backend(name: str | None) -> Iterator[None]:
    """Temporarily make *name* the default backend (no-op for ``None``)."""
    if name is None:
        yield
        return
    _validate_name(name)
    token = _override.set(name)
    try:
        yield
    finally:
        _override.reset(token)


def create_backend(backend: str | GraphBackend | None = None) -> GraphBackend:
    """Instantiate a topology backend.

    Args:
        backend: a backend *instance* (returned unchanged, allowing callers
            to inject a pre-built or custom backend), a name from
            :data:`BACKEND_NAMES`, or ``None`` for the process default
            (``REPRO_BACKEND`` environment variable, else ``"dict"``).
    """
    if isinstance(backend, GraphBackend):
        return backend
    name = _validate_name(
        default_backend_name() if backend is None else str(backend)
    )
    if name == "array":
        from repro.core.array_backend import ArraySlotBackend

        return ArraySlotBackend()
    from repro.core.graph import DictBackend

    return DictBackend()
