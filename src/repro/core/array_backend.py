"""Dense array-backed topology backend.

:class:`ArraySlotBackend` stores the out-request slots of all nodes in one
``(capacity, d)`` NumPy array of *row* indices (-1 = empty slot), with:

* **free-list row recycling** — dead nodes return their row to a free
  list, so memory stays O(alive nodes) even though ids grow forever;
* **alive-mask bookkeeping** — a boolean row mask plus the same
  :class:`~repro.util.sampling.IndexedSet` alive set the dict backend
  uses, so uniform sampling consumes the RNG identically (seeded
  trajectories are bit-identical across backends on the per-event path);
* **a lazily rebuilt CSR adjacency** — distinct-neighbour queries
  (snapshots, degree vectors, edge counts) rebuild a CSR structure at
  most once per topology version, entirely in vectorized NumPy;
* **batched births** — :meth:`apply_births` applies thousands of births
  in a handful of array operations (same distribution as the sequential
  path, different RNG stream consumption);
* **a dense in-degree counter** — ``_in_count`` mirrors
  ``len(_in_refs[row])`` as an ``int32`` array, so capacity checks in the
  bounded-degree policies (and the bulk accept/reject sampler
  :meth:`place_slots_capped`) never touch the per-row Python sets.

The slot matrix stores row indices rather than node ids so that every
vectorized pass (frontier expansion, CSR rebuild) indexes arrays directly.
An assigned slot always points at an alive row: when a node dies all slots
pointing at it are cleared (they are the returned orphans), so no stale
row reference can survive recycling.

This backend is the fast path behind ``backend="array"``; the dict backend
remains the readable reference implementation.
"""

from __future__ import annotations

import os
from typing import Iterable, Sequence

import numpy as np

from repro.core.backend import GraphBackend
from repro.core.csr import CSRView
from repro.core.node import NodeRecord
from repro.core.snapshot import Snapshot
from repro.errors import SimulationError


#: Largest node id / CSR offset representable in the compact (int32) mode.
_INT32_MAX = np.iinfo(np.int32).max


def _compact_default() -> bool:
    """The ``REPRO_COMPACT_CSR`` environment default for new backends."""
    value = os.environ.get("REPRO_COMPACT_CSR", "").strip().lower()
    return value not in ("", "0", "false", "no")


class ArraySlotBackend(GraphBackend):
    """Vectorized slot store with free-list node recycling."""

    supports_vectorized_frontier = True
    supports_bulk_placement = True

    def __init__(
        self,
        initial_capacity: int = 1024,
        slot_width: int = 4,
        compact_csr: bool | None = None,
    ) -> None:
        super().__init__()
        self._cap = max(int(initial_capacity), 1)
        self._width = max(int(slot_width), 1)
        # Compact mode halves the footprint of the analysis plane's
        # hottest arrays (CSR indptr/indices and the id column) by
        # storing them as int32 — valid while capacity, node ids, and
        # directed edge counts stay below 2^31 (guarded at the growth
        # and id-assignment sites).  Opt-in: ``compact_csr=True`` or the
        # REPRO_COMPACT_CSR environment variable.
        self.compact_csr = (
            _compact_default() if compact_csr is None else bool(compact_csr)
        )
        self._id_dtype = np.int32 if self.compact_csr else np.int64
        self._slots = np.full((self._cap, self._width), -1, dtype=np.int64)
        self._num_slots = np.zeros(self._cap, dtype=np.int32)
        self._birth = np.zeros(self._cap, dtype=np.float64)
        self._id_of = np.full(self._cap, -1, dtype=self._id_dtype)
        self._alive_rows = np.zeros(self._cap, dtype=bool)
        self._in_refs: list[set[tuple[int, int]]] = [set() for _ in range(self._cap)]
        # The fused round kernel (apply_round_batch) rewrites the whole
        # slot matrix without maintaining the per-row reverse sets — it
        # marks them stale instead, and _ensure_in_refs() rebuilds them
        # from the slot matrix on the next per-event mutation or
        # neighbour query.  _in_count stays valid at all times (the
        # kernel recomputes it with one bincount).
        self._in_refs_stale = False
        self._in_count = np.zeros(self._cap, dtype=np.int32)
        self._row_of: dict[int, int] = {}
        self._free: list[int] = []
        self._high = 0  # rows [0, _high) have been used at least once
        self._csr_epoch = -1
        self._csr_indptr: np.ndarray | None = None
        self._csr_indices: np.ndarray | None = None
        self._csr_edge_count = 0

    # ------------------------------------------------------------------
    # row bookkeeping
    # ------------------------------------------------------------------

    def row_capacity(self) -> int:
        """Current length of the row arrays (masks must match this)."""
        return self._cap

    def row_for(self, node_id: int) -> int:
        """Array row of an alive node."""
        return self._row_of[node_id]

    def row_if_alive(self, node_id: int) -> int | None:
        """Array row of *node_id*, or None when it is not alive."""
        return self._row_of.get(node_id)

    def rows_for(self, node_ids: Iterable[int]) -> np.ndarray:
        """Array rows of the *alive* subset of *node_ids* (order preserved).

        Dead ids are skipped rather than raising: callers like
        :class:`~repro.flooding.frontier.MaskFrontier` seed informed sets
        whose members may already have died (the set-based reference
        silently tolerates dead sources — they simply drop at absorb), so
        the row translation must tolerate them too.
        """
        row_of = self._row_of
        return np.fromiter(
            (row for row in (row_of.get(u) for u in node_ids) if row is not None),
            dtype=np.int64,
        )

    def ids_for_rows(self, rows: np.ndarray) -> np.ndarray:
        """Node ids occupying *rows*."""
        return self._id_of[rows]

    def slot_matrix(self) -> np.ndarray:
        """The ``(capacity, d)`` slot store of target rows (read-only view)."""
        return self._slots

    def alive_row_mask(self) -> np.ndarray:
        """Boolean mask over rows of currently-alive nodes (read-only view)."""
        return self._alive_rows

    def _take_row(self) -> int:
        if self._free:
            return self._free.pop()
        if self._high == self._cap:
            self._grow_rows(self._cap * 2)
        row = self._high
        self._high += 1
        return row

    def _grow_rows(self, new_cap: int) -> None:
        if self.compact_csr and new_cap > _INT32_MAX:
            raise SimulationError(
                f"compact (int32) mode cannot grow to {new_cap} rows; "
                "rebuild the backend with compact_csr=False"
            )
        old_cap = self._cap
        self._cap = new_cap
        grown = np.full((new_cap, self._width), -1, dtype=np.int64)
        grown[:old_cap] = self._slots
        self._slots = grown
        num_slots_grown = np.zeros(new_cap, dtype=np.int32)
        num_slots_grown[:old_cap] = self._num_slots
        self._num_slots = num_slots_grown
        birth_grown = np.zeros(new_cap, dtype=np.float64)
        birth_grown[:old_cap] = self._birth
        self._birth = birth_grown
        id_grown = np.full(new_cap, -1, dtype=self._id_dtype)
        id_grown[:old_cap] = self._id_of
        self._id_of = id_grown
        alive_grown = np.zeros(new_cap, dtype=bool)
        alive_grown[:old_cap] = self._alive_rows
        self._alive_rows = alive_grown
        self._in_refs.extend(set() for _ in range(new_cap - old_cap))
        in_count_grown = np.zeros(new_cap, dtype=np.int32)
        in_count_grown[:old_cap] = self._in_count
        self._in_count = in_count_grown

    def _grow_cols(self, new_width: int) -> None:
        extra = np.full((self._cap, new_width - self._width), -1, dtype=np.int64)
        self._slots = np.hstack([self._slots, extra])
        self._width = new_width

    def _ensure_in_refs(self) -> None:
        """Rebuild the per-row reverse-reference sets if a fused window
        left them stale (one vectorized scan of the slot matrix plus a
        Python insert per assigned slot)."""
        if not self._in_refs_stale:
            return
        self._in_refs_stale = False
        in_refs: list[set[tuple[int, int]]] = [set() for _ in range(self._cap)]
        self._in_refs = in_refs
        rows, cols = np.nonzero(self._slots >= 0)
        if rows.size:
            targets = self._slots[rows, cols]
            sources = self._id_of[rows]
            for source, col, trow in zip(
                sources.tolist(), cols.tolist(), targets.tolist()
            ):
                in_refs[trow].add((source, col))

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------

    def neighbors(self, node_id: int) -> set[int]:
        """Current undirected neighbours of *node_id* (distinct ids)."""
        self._ensure_in_refs()
        row = self._row_of[node_id]
        out = self._slots[row, : self._num_slots[row]]
        result = {int(self._id_of[t]) for t in out if t >= 0}
        result.update(source for source, _ in self._in_refs[row])
        return result

    def degree(self, node_id: int) -> int:
        return len(self.neighbors(node_id))

    def has_edge(self, u: int, v: int) -> bool:
        urow = self._row_of.get(u)
        vrow = self._row_of.get(v)
        if urow is None or vrow is None:
            return False
        if np.any(self._slots[urow, : self._num_slots[urow]] == vrow):
            return True
        return bool(np.any(self._slots[vrow, : self._num_slots[vrow]] == urow))

    def random_neighbor(
        self, node_id: int, rng: np.random.Generator
    ) -> int | None:
        keys = sorted(self.neighbors(node_id))
        if not keys:
            return None
        return keys[int(rng.integers(0, len(keys)))]

    def num_edges(self) -> int:
        """Number of distinct undirected edges (from the lazy CSR)."""
        self._ensure_csr()
        return self._csr_edge_count

    def record(self, node_id: int) -> NodeRecord:
        """Synthesized record of an *alive* node (dead rows are recycled)."""
        row = self._row_of.get(node_id)
        if row is None:
            raise SimulationError(
                f"node {node_id} is not alive (array backend recycles dead rows)"
            )
        return NodeRecord(
            node_id=node_id,
            birth_time=float(self._birth[row]),
            out_slots=self.out_slots_of(node_id),
        )

    def birth_time(self, node_id: int) -> float:
        return float(self._birth[self._row_of[node_id]])

    def out_slots_of(self, node_id: int) -> list[int | None]:
        row = self._row_of[node_id]
        return [
            int(self._id_of[t]) if t >= 0 else None
            for t in self._slots[row, : self._num_slots[row]]
        ]

    def in_slot_count(self, node_id: int) -> int:
        return int(self._in_count[self._row_of[node_id]])

    # ------------------------------------------------------------------
    # topology mutation
    # ------------------------------------------------------------------

    def add_node(self, node_id: int, birth_time: float, num_slots: int) -> NodeRecord:
        if node_id in self._row_of:
            raise SimulationError(f"node id {node_id} already exists")
        if self.compact_csr and node_id > _INT32_MAX:
            raise SimulationError(
                f"node id {node_id} does not fit the compact (int32) id store"
            )
        if num_slots > self._width:
            self._grow_cols(num_slots)
        row = self._take_row()
        self._slots[row, :] = -1
        self._num_slots[row] = num_slots
        self._birth[row] = birth_time
        self._id_of[row] = node_id
        self._alive_rows[row] = True
        self._in_refs[row] = set()
        self._in_count[row] = 0
        self._row_of[node_id] = row
        self.alive.add(node_id)
        self._note_mutation((node_id,))
        return NodeRecord(
            node_id=node_id, birth_time=birth_time, out_slots=[None] * num_slots
        )

    def assign_slot(self, source: int, slot_index: int, target: int) -> None:
        self._ensure_in_refs()
        srow = self._row_of[source]
        if not 0 <= slot_index < self._num_slots[srow]:
            # Matches the dict backend's list IndexError; without this the
            # write would land in a padding column, visible to the CSR but
            # not to neighbors()/out_slots_of().
            raise IndexError(
                f"slot index {slot_index} out of range for node {source}"
            )
        if self._slots[srow, slot_index] >= 0:
            raise SimulationError(
                f"slot {slot_index} of node {source} is already assigned"
            )
        if target == source:
            raise SimulationError(f"self-loop requested by node {source}")
        trow = self._row_of.get(target)
        if trow is None:
            raise SimulationError(f"slot target {target} is not alive")
        self._slots[srow, slot_index] = trow
        self._in_refs[trow].add((source, slot_index))
        self._in_count[trow] += 1
        self._note_mutation((source, target))

    def clear_slot(self, source: int, slot_index: int) -> int | None:
        self._ensure_in_refs()
        srow = self._row_of[source]
        if not 0 <= slot_index < self._num_slots[srow]:
            raise IndexError(
                f"slot index {slot_index} out of range for node {source}"
            )
        trow = self._slots[srow, slot_index]
        if trow < 0:
            return None
        self._slots[srow, slot_index] = -1
        self._in_refs[trow].discard((source, slot_index))
        self._in_count[trow] -= 1
        target = int(self._id_of[trow])
        self._note_mutation((source, target))
        return target

    def remove_node(self, node_id: int, death_time: float) -> list[tuple[int, int]]:
        """Kill *node_id*; its row returns to the free list for recycling."""
        del death_time  # recycled rows keep no tombstone
        self._ensure_in_refs()
        if node_id not in self.alive:
            raise SimulationError(f"cannot remove node {node_id}: not alive")
        row = self._row_of[node_id]
        self.alive.discard(node_id)
        self._alive_rows[row] = False
        touched = [node_id]

        # Drop the dying node's own requests.
        for slot_index in range(int(self._num_slots[row])):
            trow = self._slots[row, slot_index]
            if trow >= 0:
                self._in_refs[trow].discard((node_id, slot_index))
                self._in_count[trow] -= 1
                touched.append(int(self._id_of[trow]))
        self._slots[row, :] = -1

        # Orphan the requests of others pointing here (sorted, matching the
        # dict backend so regeneration repairs in the same RNG order).
        orphaned = sorted(self._in_refs[row])
        for source, slot_index in orphaned:
            self._slots[self._row_of[source], slot_index] = -1
            touched.append(source)
        self._in_refs[row] = set()
        self._in_count[row] = 0

        del self._row_of[node_id]
        self._id_of[row] = -1
        self._num_slots[row] = 0
        self._birth[row] = 0.0
        self._free.append(row)
        self._note_mutation(touched)
        return orphaned

    # ------------------------------------------------------------------
    # batched churn
    # ------------------------------------------------------------------

    def add_nodes(
        self,
        node_ids: Sequence[int],
        times: Sequence[float] | float,
        num_slots: int,
    ) -> np.ndarray:
        """Register a batch of newborns in a few vectorized writes.

        Returns the assigned rows in batch order (used by the batched
        birth paths; the :class:`GraphBackend` contract only promises the
        registration itself).
        """
        count = len(node_ids)
        if count == 0:
            return np.empty(0, dtype=np.int64)
        if len(set(node_ids)) != count:
            raise SimulationError("duplicate node ids in birth batch")
        clash = next((i for i in node_ids if i in self._row_of), None)
        if clash is not None:
            raise SimulationError(f"node id {clash} already exists")
        times_list = self.birth_times_list(node_ids, times)
        if num_slots > self._width:
            self._grow_cols(num_slots)

        # Bulk row allocation: recycled rows first, then a contiguous
        # fresh range (free rows are fully cleared by remove_node, so
        # their slot columns and reverse-ref sets need no re-init).
        recycled = self._free[max(len(self._free) - count, 0):]
        del self._free[max(len(self._free) - count, 0):]
        fresh = count - len(recycled)
        while self._high + fresh > self._cap:
            self._grow_rows(self._cap * 2)
        rows = np.empty(count, dtype=np.int64)
        rows[: len(recycled)] = recycled
        rows[len(recycled):] = np.arange(
            self._high, self._high + fresh, dtype=np.int64
        )
        self._high += fresh

        ids = np.asarray(node_ids, dtype=np.int64)
        if self.compact_csr and ids.size and int(ids.max()) > _INT32_MAX:
            raise SimulationError(
                "birth batch contains node ids beyond the compact "
                "(int32) id store"
            )
        self._slots[rows, :] = -1
        self._num_slots[rows] = num_slots
        self._birth[rows] = np.asarray(times_list, dtype=np.float64)
        self._id_of[rows] = ids
        self._alive_rows[rows] = True
        self._in_count[rows] = 0
        self._row_of.update(zip(ids.tolist(), rows.tolist()))
        self.alive.extend_unique(node_ids)
        self._note_mutation(ids.tolist() if self._touched is not None else ())
        return rows

    def apply_births(
        self,
        node_ids: Sequence[int],
        times: Sequence[float] | float,
        num_slots: int,
        rng: np.random.Generator,
    ) -> None:
        """Vectorized pure-birth batch.

        Newborn ``k`` draws its ``num_slots`` targets uniformly (with
        replacement) from the ``m0 + k`` nodes present when it joins —
        the same law as the sequential path, sampled in one
        ``rng.integers`` call for the whole batch.
        """
        count = len(node_ids)
        if count == 0:
            return
        self._ensure_in_refs()
        # Existing alive rows in IndexedSet order, then the new rows: the
        # first m0 + k entries are exactly newborn k's candidate pool.
        m0 = self.num_alive()
        existing_ids = self.alive.as_list()
        rows = self.add_nodes(node_ids, times, num_slots)
        pool_rows = np.empty(m0 + count, dtype=np.int64)
        if m0:
            pool_rows[:m0] = self.rows_for(existing_ids)
        pool_rows[m0:] = rows

        ids = np.asarray(node_ids, dtype=np.int64)
        highs = np.repeat(m0 + np.arange(count, dtype=np.int64), num_slots)
        valid = highs > 0
        draws = rng.integers(0, np.where(valid, highs, 1))
        target_rows = pool_rows[draws[valid]]

        flat = np.full(count * num_slots, -1, dtype=np.int64)
        flat[valid] = target_rows
        self._slots[np.repeat(rows, num_slots), np.tile(np.arange(num_slots), count)] = flat

        source_ids = np.repeat(ids, num_slots)[valid]
        slot_indices = np.tile(np.arange(num_slots), count)[valid]
        in_refs = self._in_refs
        for source, slot_index, trow in zip(
            source_ids.tolist(), slot_indices.tolist(), target_rows.tolist()
        ):
            in_refs[trow].add((source, slot_index))
        if target_rows.size:
            np.add.at(self._in_count, target_rows, 1)
        self._note_mutation(
            self._id_of[target_rows].tolist()
            if self._touched is not None
            else ()
        )

    def apply_birth_slots(
        self,
        node_ids: Sequence[int],
        times: Sequence[float] | float,
        targets: np.ndarray,
    ) -> None:
        """Vectorized pure-birth batch with pre-drawn target ids.

        Registers the batch via :meth:`add_nodes` and scatters every
        non-negative target into the slot matrix in one pass; rows may
        reference earlier newborns of the same batch.  No RNG is consumed
        (the caller drew from a canonical plan).
        """
        count = len(node_ids)
        if count == 0:
            return
        targets = np.asarray(targets, dtype=np.int64)
        num_slots = targets.shape[1] if targets.ndim == 2 else 0
        self._ensure_in_refs()
        rows = self.add_nodes(node_ids, times, num_slots)
        if num_slots == 0:
            return
        flat = targets.reshape(-1)
        valid = flat >= 0
        if not np.any(valid):
            return
        ids = np.asarray(node_ids, dtype=np.int64)
        if np.any(flat[valid] == np.repeat(ids, num_slots)[valid]):
            raise SimulationError("self-loop in pre-drawn birth targets")
        row_of = self._row_of
        try:
            trows = np.fromiter(
                (row_of[t] for t in flat[valid].tolist()),
                dtype=np.int64,
                count=int(np.count_nonzero(valid)),
            )
        except KeyError as exc:
            raise SimulationError(
                f"pre-drawn birth target {exc.args[0]} is not alive"
            ) from exc
        src_rows = np.repeat(rows, num_slots)[valid]
        src_cols = np.tile(np.arange(num_slots), count)[valid]
        self._slots[src_rows, src_cols] = trows
        np.add.at(self._in_count, trows, 1)
        in_refs = self._in_refs
        src_ids = np.repeat(ids, num_slots)[valid]
        for source, col, trow in zip(
            src_ids.tolist(), src_cols.tolist(), trows.tolist()
        ):
            in_refs[trow].add((source, int(col)))
        self._note_mutation(
            self._id_of[trows].tolist() if self._touched is not None else ()
        )

    # ------------------------------------------------------------------
    # fused streaming rounds (death → regeneration → birth per round)
    # ------------------------------------------------------------------

    supports_round_batch = True

    def apply_round_batch(
        self,
        base: int,
        rounds: int,
        num_slots: int,
        start_time: float,
        plan,
        regenerate: bool,
    ) -> None:
        """Fused streaming-round kernel (see :class:`GraphBackend` contract).

        Works in a *local-id* coordinate system over the window's node
        universe (``local = id − base``, length ``L = n + W``): the whole
        out-slot state becomes one ``(L, d)`` int64 matrix and per-round
        work reduces to orphan regeneration plus one birth-row scatter —
        a handful of small-array ops per round (driven by a tombstoned
        in-edge log, ``entry = source_local·d + slot``).  Without
        regeneration there is no per-round work at all: the window's
        births pre-scatter in one vectorized take (a birth at round ``j``
        only targets locals ``≥ j``, so it can never point at a node that
        dies before it exists) and dead targets are masked wholesale.  The write-back relabels
        the ``n`` final survivors into rows ``0..n-1`` in ascending id
        order and marks the reverse-reference sets stale
        (:meth:`_ensure_in_refs` rebuilds them only if a per-event
        operation needs them — steady fused streaming with CSR observers
        never does).
        """
        n = int(plan.n)
        W = int(rounds)
        d = int(num_slots)
        if W < 1:
            return
        if plan.rounds < W or plan.d != d:
            raise SimulationError("window plan does not cover this batch")
        if self.num_alive() != n:
            raise SimulationError(
                f"fused window needs exactly {n} alive nodes, "
                f"found {self.num_alive()}"
            )
        if self.compact_csr and base + W + n - 1 > _INT32_MAX:
            raise SimulationError(
                "fused window would allocate node ids beyond the compact "
                "(int32) id store"
            )
        row_of = self._row_of
        try:
            rows0 = np.fromiter(
                (row_of[i] for i in range(base, base + n)),
                dtype=np.int64,
                count=n,
            )
        except KeyError as exc:
            raise SimulationError(
                f"fused window needs the contiguous alive range "
                f"[{base}, {base + n}); {exc.args[0]} is missing"
            ) from exc
        if not np.all(self._num_slots[rows0] == d):
            raise SimulationError(
                "fused window needs a uniform out-degree across alive nodes"
            )

        L = n + W
        # Local out-slot matrix: row l holds node base+l's targets as
        # locals (-1 = empty); rows [0, n) seed from live state.  Round
        # k's newborn (local n+k-1) picks offset v among the post-death
        # survivors [k, k+n-1), i.e. local k+v.
        out = np.full((L, d), -1, dtype=np.int64)
        current = self._slots[rows0, :d]
        valid0 = current >= 0
        if np.any(valid0):
            out[:n][valid0] = (
                self._id_of[current[valid0]].astype(np.int64) - base
            )
        out_flat = out.reshape(-1)

        surv = out[W:]
        if regenerate:
            # Births interleave with the per-round regeneration draws
            # (the plan's canonical order), so they scatter in-loop.
            self._fused_regen_rounds(out_flat, n, W, d, plan)
            if np.any((surv >= 0) & (surv < W)):
                raise SimulationError(
                    "fused regeneration left a slot pointing at a dead node"
                )
        else:
            # No regeneration draws to interleave: pre-scatter the whole
            # window's births in one take.  A birth at round j only
            # targets locals >= j, never a pending death, and nothing
            # rewrites a slot — a target is simply dead at window end iff
            # its local id < W.
            out[n:] = plan.take_birth(W) + np.arange(
                1, W + 1, dtype=np.int64
            )[:, None]
            surv[(surv >= 0) & (surv < W)] = -1

        # ---- write-back: relabel the n survivors into rows 0..n-1 ----
        keep = max(n - W, 0)  # original nodes still alive at window end
        old_birth = self._birth[rows0[n - keep :]].copy()
        final_ids = np.arange(base + W, base + W + n, dtype=np.int64)
        final_slots = np.where(surv >= 0, surv - W, -1)
        self._slots[:, :] = -1
        self._slots[:n, :d] = final_slots
        self._num_slots[:] = 0
        self._num_slots[:n] = d
        birth = np.empty(n, dtype=np.float64)
        birth[:keep] = old_birth
        # Newborn base+n+k-1 joined at time start_time + k.
        birth[keep:] = start_time + (final_ids[keep:] - (base + n) + 1)
        self._birth[:] = 0.0
        self._birth[:n] = birth
        self._id_of[:] = -1
        self._id_of[:n] = final_ids.astype(self._id_dtype)
        self._alive_rows[:] = False
        self._alive_rows[:n] = True
        self._in_count[:] = 0
        assigned = final_slots[final_slots >= 0]
        if assigned.size:
            self._in_count[:n] = np.bincount(assigned, minlength=n).astype(
                np.int32
            )[:n]
        self._row_of = dict(zip(final_ids.tolist(), range(n)))
        self._free = list(range(self._high - 1, n - 1, -1))
        from repro.util.sampling import IndexedSet

        self.alive = IndexedSet.from_unique_list(final_ids.tolist())
        self._in_refs_stale = True
        self._note_mutation(
            range(base, base + n + W) if self._touched is not None else ()
        )

    def _fused_regen_rounds(
        self, out_flat: np.ndarray, n: int, W: int, d: int, plan
    ) -> None:
        """Per-round regeneration + birth over the local out-slot matrix.

        Maintains a tombstoned in-edge log: ``in_list[t, :in_cnt[t]]``
        holds every entry (``source_local·d + slot``) that *ever* pointed
        at local ``t``; an entry is live iff its slot still targets ``t``
        and its source outlives ``t`` (targets of one slot strictly
        increase over the window, so no entry can be re-created — the
        liveness test has no ABA case).  The log is seeded with one
        stable argsort over the prefilled entries; regeneration rewrites
        and each round's birth append to it.  Draws consume in the plan's
        canonical per-round order — the round's regenerations, then its
        birth.
        """
        L = n + W
        entries = np.nonzero(out_flat[: n * d] >= 0)[0]
        idx_dtype = np.int64 if L * d > _INT32_MAX else np.int32
        if entries.size:
            tgts = out_flat[entries]
            counts = np.bincount(tgts, minlength=L)
            width = int(counts.max()) + 8
        else:
            counts = np.zeros(L, dtype=np.int64)
            width = 8
        in_list = np.zeros((L, width), dtype=idx_dtype)
        in_cnt = counts.astype(np.int64)
        if entries.size:
            order = np.argsort(tgts, kind="stable")
            sorted_entries = entries[order].astype(idx_dtype)
            sorted_tgts = tgts[order]
            starts = np.nonzero(
                np.r_[True, sorted_tgts[1:] != sorted_tgts[:-1]]
            )[0]
            slot_pos = np.arange(sorted_tgts.size) - np.repeat(
                starts, np.diff(np.r_[starts, sorted_tgts.size])
            )
            in_list[sorted_tgts, slot_pos] = sorted_entries

        def append(entry_list: list[int], target_list: list[int]) -> None:
            nonlocal in_list, width
            for entry, target in zip(entry_list, target_list):
                pos = in_cnt[target]
                if pos == width:
                    grown = np.zeros((L, 2 * width), dtype=idx_dtype)
                    grown[:, :width] = in_list
                    in_list = grown
                    width *= 2
                in_list[target, pos] = entry
                in_cnt[target] = pos + 1

        for k in range(1, W + 1):
            dying = k - 1
            cnt = in_cnt[dying]
            if cnt:
                cand = in_list[dying, :cnt]
                sources = cand // d
                live = (sources > dying) & (out_flat[cand] == dying)
                orphans = np.sort(cand[live])  # ascending (source, slot)
                if orphans.size:
                    draws = plan.take_regen(int(orphans.size))
                    # Skip trick: draw v over the n-2 survivors other
                    # than the orphan's own source (post-death range
                    # [k, k+n-1)).
                    rel = orphans // d - k
                    new_targets = k + draws + (draws >= rel)
                    out_flat[orphans] = new_targets
                    append(orphans.tolist(), new_targets.tolist())
            # Birth: local n+k-1 targets local k+v.
            birth_targets = k + plan.take_birth(1)[0]
            row0 = (n + dying) * d
            out_flat[row0 : row0 + d] = birth_targets
            append(list(range(row0, row0 + d)), birth_targets.tolist())

    # ------------------------------------------------------------------
    # bulk capped placement (RAES / capped-regeneration fast path)
    # ------------------------------------------------------------------

    def place_slots_capped(
        self,
        sources: Sequence[int],
        slot_indices: Sequence[int],
        cap: int,
        max_attempts: int,
        rng: np.random.Generator,
        highs: Sequence[int] | None = None,
        source_rows: np.ndarray | None = None,
    ) -> np.ndarray:
        """Fill empty slots in bulk, rejecting targets at the in-degree cap.

        The vectorized accept/reject dynamic behind
        :class:`~repro.core.edge_policy.RAESPolicy` and the batched
        :class:`~repro.core.edge_policy.CappedRegenerationPolicy` paths.
        Each *attempt round* draws one uniform candidate per still-pending
        slot in a single ``rng.integers`` call and tallies the round's
        proposals per target row with ``np.bincount``.  A target whose
        current in-slot count plus tally stays within *cap* accepts
        everything (the common case — one fully vectorized pass); an
        oversubscribed target accepts proposals in request order up to its
        remaining capacity and rejects the overflow, which re-samples next
        round.  Request order is the sequential loop's processing order,
        so a birth batch gives earlier newborns (whose candidate pools are
        smallest) the same priority the per-event path gives them.  Rounds
        repeat until every slot is placed or *max_attempts* is exhausted.

        Args:
            sources: owning node ids of the slots to fill (must be alive;
                the same id may appear once per empty slot).
            slot_indices: slot index of each request, aligned with
                *sources*; the addressed slots must currently be empty.
            cap: hard in-degree cap enforced on every target.
            max_attempts: number of accept/reject rounds before giving up
                on a slot (it stays empty, exactly like the sequential
                rejection loop).
            rng: randomness source for the candidate draws.
            highs: optional per-request candidate-pool prefix sizes over
                the alive set's internal order — newborn ``k`` of a birth
                batch passes ``m0 + k`` so it only targets nodes present
                when it joined (mirroring :meth:`apply_births`).  When
                omitted every request draws from all alive nodes except
                its own source.
            source_rows: the rows of *sources*, when the caller already
                knows them (the batched birth path does); skips the
                per-request id→row translation.

        Returns:
            Target node ids aligned with *sources* (−1 where the slot
            could not be placed).  Same placement *law* as the sequential
            per-slot loop, different RNG stream consumption — this is a
            batch path, not a per-event path.
        """
        self._ensure_in_refs()
        source_ids = np.asarray(sources, dtype=np.int64)
        slot_cols = np.asarray(slot_indices, dtype=np.int64)
        count = len(source_ids)
        placed = np.full(count, -1, dtype=np.int64)
        if count == 0:
            return placed
        if source_rows is not None:
            srows = np.asarray(source_rows, dtype=np.int64)
        else:
            row_of = self._row_of
            srows = np.fromiter(
                (row_of[s] for s in source_ids.tolist()),
                dtype=np.int64,
                count=count,
            )
        if np.any(self._slots[srows, slot_cols] >= 0):
            raise SimulationError("place_slots_capped needs empty slots")

        pool_ids = self.alive.as_list()
        m = len(pool_ids)
        pool_rows = self.rows_for(pool_ids)
        if highs is None:
            if m <= 1:
                return placed  # nobody but the sources themselves
            # Draw from [0, m-1) and shift past the source's own pool
            # position: exact uniform-over-others, no rejection needed.
            pos = np.empty(self._cap, dtype=np.int64)
            pos[pool_rows] = np.arange(m)
            self_pos = pos[srows]
            bounds = np.full(count, m - 1, dtype=np.int64)
        else:
            self_pos = None
            bounds = np.asarray(highs, dtype=np.int64)
            if len(bounds) != count:
                raise SimulationError(
                    f"{count} placement requests but {len(bounds)} pool bounds"
                )

        in_count = self._in_count
        in_refs = self._in_refs
        pending = np.nonzero(bounds > 0)[0]
        for _ in range(max_attempts):
            if not pending.size:
                break
            draws = rng.integers(0, bounds[pending])
            if self_pos is not None:
                draws += draws >= self_pos[pending]
            trows = pool_rows[draws]
            proposals = np.bincount(trows, minlength=self._cap)
            room = cap - in_count[trows]
            if np.all(proposals[trows] <= room):
                accepted = room > 0
            else:
                # Rank each proposal among the round's proposals to the
                # same target, in request (= pending) order; a target
                # accepts the first `room` of them and rejects the rest.
                order = np.argsort(trows, kind="stable")
                sorted_rows = trows[order]
                positions = np.arange(sorted_rows.size)
                group_starts = positions[
                    np.r_[True, sorted_rows[1:] != sorted_rows[:-1]]
                ]
                start_of = np.repeat(
                    group_starts,
                    np.diff(np.r_[group_starts, sorted_rows.size]),
                )
                ranks = np.empty(sorted_rows.size, dtype=np.int64)
                ranks[order] = positions - start_of
                accepted = ranks < room
            hit = pending[accepted]
            if hit.size:
                accepted_rows = trows[accepted]
                self._slots[srows[hit], slot_cols[hit]] = accepted_rows
                np.add.at(in_count, accepted_rows, 1)
                for s, j, trow in zip(
                    source_ids[hit].tolist(),
                    slot_cols[hit].tolist(),
                    accepted_rows.tolist(),
                ):
                    in_refs[trow].add((s, j))
                placed[hit] = self._id_of[accepted_rows]
            pending = pending[~accepted]
        if self._touched is not None:
            self._touched.update(source_ids.tolist())
            self._touched.update(placed[placed >= 0].tolist())
        self._note_mutation()
        return placed

    # ------------------------------------------------------------------
    # vectorized reads: CSR adjacency, degree vectors, frontier boundary
    # ------------------------------------------------------------------

    def _ensure_csr(self) -> None:
        if self._csr_epoch == self._mutation_epoch:
            return
        cap = self._cap
        mask = self._slots >= 0
        src = np.nonzero(mask)[0]
        tgt = self._slots[mask]
        u = np.concatenate([src, tgt])
        v = np.concatenate([tgt, src])
        keys = np.unique(u * np.int64(cap) + v)
        uu = keys // cap
        vv = keys % cap
        counts = np.bincount(uu, minlength=cap)
        indptr = np.zeros(cap + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        if self.compact_csr:
            # Row capacity is int32-guarded at growth time; directed
            # entries (2·edges ≤ capacity·width) therefore fit too once
            # the total is checked here.
            if len(keys) > _INT32_MAX:
                raise SimulationError(
                    "compact (int32) mode cannot index "
                    f"{len(keys)} directed CSR entries"
                )
            indptr = indptr.astype(np.int32)
            vv = vv.astype(np.int32)
        self._csr_indptr = indptr
        self._csr_indices = vv
        self._csr_edge_count = len(keys) // 2
        self._csr_epoch = self._mutation_epoch

    def adjacency_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """``(indptr, indices)`` of the distinct-neighbour adjacency over
        rows, rebuilt lazily (at most once per topology version)."""
        self._ensure_csr()
        assert self._csr_indptr is not None and self._csr_indices is not None
        return self._csr_indptr, self._csr_indices

    def degree_vector(self) -> np.ndarray:
        """Distinct-neighbour degrees aligned with :meth:`alive_ids` order."""
        ids = self.alive_ids()
        if not ids:
            return np.zeros(0, dtype=np.int64)
        indptr, _ = self.adjacency_csr()
        rows = self.rows_for(ids)
        return indptr[rows + 1] - indptr[rows]

    def boundary_rows(self, informed_mask: np.ndarray) -> np.ndarray:
        """Rows adjacent to (but outside) the informed row mask.

        This is the vectorized Definition 3.1 outer boundary: the targets
        of informed rows' slots, plus every row owning a slot that points
        into the informed mask — no CSR rebuild, no Python-level loop.
        """
        slots = self._slots
        boundary = np.zeros(self._cap, dtype=bool)
        informed_rows = np.nonzero(informed_mask)[0]
        if informed_rows.size:
            out = slots[informed_rows]
            out = out[out >= 0]
            boundary[out] = True
        valid = slots >= 0
        hits = valid & informed_mask[np.where(valid, slots, 0)]
        boundary |= hits.any(axis=1)
        boundary &= ~informed_mask
        boundary &= self._alive_rows
        return boundary

    def boundary_of(self, nodes: Iterable[int]) -> set[int]:
        """``∂out(S)`` as a set of node ids (vectorized internally)."""
        mask = np.zeros(self._cap, dtype=bool)
        rows = self.rows_for(nodes)
        if rows.size == 0:
            return set()
        mask[rows] = True
        boundary = self.boundary_rows(mask)
        return {int(i) for i in self._id_of[np.nonzero(boundary)[0]]}

    # ------------------------------------------------------------------
    # state serialization (service plane)
    # ------------------------------------------------------------------

    def dump_state(self) -> dict:
        """Serialize the full mutable state to a JSON-able dict.

        Only the touched row prefix ``[:_high]`` of each dense array is
        emitted; the free-list order is preserved verbatim because
        :meth:`_take_row` pops from its end (row assignment order is
        RNG-visible through batched births).  The lazy CSR cache is not
        serialized — restore marks it stale and it rebuilds on demand.
        """
        high = self._high
        return {
            "kind": "array",
            "next_id": self._next_id,
            "mutation_epoch": self._mutation_epoch,
            "capacity": self._cap,
            "width": self._width,
            "high": high,
            "compact_csr": self.compact_csr,
            "free": [int(row) for row in self._free],
            "alive": [int(u) for u in self.alive],
            "slots": self._slots[:high],
            "num_slots": self._num_slots[:high],
            "birth": self._birth[:high],
            "id_of": self._id_of[:high],
            "alive_rows": self._alive_rows[:high],
        }

    def restore_state(self, payload: dict) -> None:
        """Restore state previously produced by :meth:`dump_state`."""
        from repro.util.sampling import IndexedSet

        self._cap = int(payload["capacity"])
        self._width = int(payload["width"])
        self.compact_csr = bool(payload["compact_csr"])
        self._id_dtype = np.int32 if self.compact_csr else np.int64
        high = int(payload["high"])
        self._high = high
        self._slots = np.full((self._cap, self._width), -1, dtype=np.int64)
        self._num_slots = np.zeros(self._cap, dtype=np.int32)
        self._birth = np.zeros(self._cap, dtype=np.float64)
        self._id_of = np.full(self._cap, -1, dtype=self._id_dtype)
        self._alive_rows = np.zeros(self._cap, dtype=bool)
        self._slots[:high] = np.asarray(payload["slots"], dtype=np.int64)
        self._num_slots[:high] = np.asarray(payload["num_slots"], dtype=np.int32)
        self._birth[:high] = np.asarray(payload["birth"], dtype=np.float64)
        self._id_of[:high] = np.asarray(payload["id_of"], dtype=self._id_dtype)
        self._alive_rows[:high] = np.asarray(payload["alive_rows"], dtype=bool)
        self._free = [int(row) for row in payload["free"]]
        # Derived indices: _row_of from the id column, _in_refs/_in_count
        # from the slot matrix (sets carry no RNG-visible order).
        self._row_of = {
            int(self._id_of[row]): int(row)
            for row in np.nonzero(self._alive_rows)[0]
        }
        self._in_refs = [set() for _ in range(self._cap)]
        self._in_refs_stale = False
        self._in_count = np.zeros(self._cap, dtype=np.int32)
        rows, slot_cols = np.nonzero(self._slots >= 0)
        for row, col in zip(rows.tolist(), slot_cols.tolist()):
            target = int(self._slots[row, col])
            self._in_refs[target].add((int(self._id_of[row]), col))
        if len(rows):
            self._in_count[: self._high] = np.bincount(
                self._slots[rows, slot_cols], minlength=self._high
            ).astype(np.int32)[: self._high]
        self.alive = IndexedSet(payload["alive"])
        self._next_id = int(payload["next_id"])
        self._mutation_epoch = int(payload["mutation_epoch"])
        self._csr_epoch = -1
        self._csr_indptr = None
        self._csr_indices = None
        self._csr_edge_count = 0
        self._touched = None

    # ------------------------------------------------------------------
    # snapshot / verification
    # ------------------------------------------------------------------

    def csr_view(self, time: float) -> CSRView:
        """Zero-copy :class:`CSRView` export (verts are backend rows).

        ``indptr``/``indices`` are the lazily rebuilt CSR arrays and
        ``vert_ids``/``birth`` alias the dense row stores — nothing is
        copied; the only per-call work is sorting the alive rows into
        ascending node-id order.  The returned view aliases live state
        and is valid until the next topology mutation (the caller's
        observation window).
        """
        indptr, indices = self.adjacency_csr()
        rows = np.nonzero(self._alive_rows)[0]
        order = np.argsort(self._id_of[rows])
        return CSRView(
            time=time,
            indptr=indptr,
            indices=indices,
            vert_ids=self._id_of,
            birth=self._birth,
            alive_verts=rows[order],
            vert_of=self._row_of,
        )

    def snapshot(self, time: float) -> Snapshot:
        """Freeze the current topology (CSR is rebuilt lazily here)."""
        nodes = self.alive.as_list()
        indptr, indices = self.adjacency_csr()
        id_of = self._id_of
        row_of = self._row_of
        adjacency: dict[int, frozenset[int]] = {}
        birth_times: dict[int, float] = {}
        out_slots: dict[int, tuple[int | None, ...]] = {}
        for u in nodes:
            row = row_of[u]
            nbr_rows = indices[indptr[row] : indptr[row + 1]]
            adjacency[u] = frozenset(int(i) for i in id_of[nbr_rows])
            birth_times[u] = float(self._birth[row])
            out_slots[u] = tuple(self.out_slots_of(u))
        return Snapshot(
            time=time,
            nodes=frozenset(nodes),
            adjacency=adjacency,
            birth_times=birth_times,
            out_slots=out_slots,
        )

    def check_invariants(self) -> None:
        """Raise :class:`SimulationError` if internal indices disagree.

        Checked invariants:
          * id/row maps are mutually consistent with the alive structures;
          * every assigned slot points at an alive row and is registered
            in the target's reverse index;
          * every reverse-index entry corresponds to a real assignment;
          * the dense ``_in_count`` mirror equals ``len(_in_refs[row])``
            on every used row;
          * free rows are fully cleared (no stale slots or reverse refs);
          * CSR degrees and the cached edge count match a recount.
        """
        self._ensure_in_refs()
        for node_id, row in self._row_of.items():
            if self._id_of[row] != node_id:
                raise SimulationError(f"row map corrupt for node {node_id}")
            if not self._alive_rows[row] or node_id not in self.alive:
                raise SimulationError(f"alive bookkeeping corrupt for {node_id}")
        if len(self._row_of) != self.num_alive():
            raise SimulationError("row map and alive set sizes disagree")

        pairs: set[tuple[int, int]] = set()
        for node_id, row in self._row_of.items():
            for slot_index in range(int(self._num_slots[row])):
                trow = self._slots[row, slot_index]
                if trow < 0:
                    continue
                if not self._alive_rows[trow]:
                    raise SimulationError(
                        f"slot ({node_id},{slot_index}) points at dead row {trow}"
                    )
                if (node_id, slot_index) not in self._in_refs[trow]:
                    raise SimulationError(
                        f"slot ({node_id},{slot_index}) missing from in_refs"
                    )
                target = int(self._id_of[trow])
                pairs.add((min(node_id, target), max(node_id, target)))
        for row in range(self._high):
            if self._in_count[row] != len(self._in_refs[row]):
                raise SimulationError(
                    f"in_count[{row}] = {self._in_count[row]} but "
                    f"{len(self._in_refs[row])} reverse refs are registered"
                )
            for source, slot_index in self._in_refs[row]:
                srow = self._row_of.get(source)
                if srow is None or self._slots[srow, slot_index] != row:
                    raise SimulationError(
                        f"stale in_ref ({source},{slot_index}) -> row {row}"
                    )
        for row in self._free:
            if (
                self._id_of[row] != -1
                or self._alive_rows[row]
                or self._in_refs[row]
                or self._in_count[row]
                or np.any(self._slots[row] >= 0)
            ):
                raise SimulationError(f"free row {row} is not fully cleared")

        if self.num_edges() != len(pairs):
            raise SimulationError(
                f"CSR edge count {self.num_edges()} != recount {len(pairs)}"
            )
        for node_id in self.alive_ids():
            indptr, _ = self.adjacency_csr()
            row = self._row_of[node_id]
            if indptr[row + 1] - indptr[row] != len(self.neighbors(node_id)):
                raise SimulationError(f"CSR degree mismatch for node {node_id}")
