"""Shared draw plan for fused streaming-churn windows.

A fused window executes ``W`` consecutive streaming rounds (death →
regeneration → birth, :mod:`repro.models.streaming`) inside one backend
call.  The control flow of those rounds is fully deterministic — round
``k`` of the window kills the oldest node and births one newborn — so the
only randomness is the destination draws.  :class:`WindowDrawPlan` owns
all of them and fixes their *canonical order*: within round ``k``, the
regeneration draws of the round's orphans (ascending ``(source, slot)``),
then the newborn's ``d`` birth draws.

* **birth offsets** — uniform over ``[0, n-1)``; offset ``v`` of round
  ``k`` addresses the ``v``-th oldest of the ``n - 1`` nodes present when
  the newborn joins (the post-death survivors), which is exactly the
  paper's uniform-over-others birth law — the newborn itself is not in
  the pool, so no rejection or skip is needed.  Windows without
  regeneration draws (SDG) may take the whole window's matrix upfront
  (:meth:`take_birth` with ``rounds > 1``): NumPy generates bounded
  integers element-by-element from the bit stream, so one ``(W, d)``
  request consumes the generator exactly like ``W`` consecutive ``(1,
  d)`` requests (pinned by the window-boundary equivalence tests).
* **regeneration draws** — uniform over ``[0, n-2)``, exactly one per
  orphaned request, taken per round.  An orphan owned by the survivor at
  post-death age rank ``rel`` maps draw ``v`` to rank ``v + (v >=
  rel)``: exact uniform over the ``n - 2`` survivors other than itself
  (the skip trick), no rejection re-draws.

Draw counts are *exact* — nothing is pre-drawn and discarded at a window
boundary — so the consumed RNG stream depends only on the round sequence,
never on how rounds are partitioned into windows.  That buys the two
reproducibility guarantees the fused path makes: arbitrary window splits
replay the identical trajectory (W=1 fused == one big window), and a
checkpoint between windows restores it (the trajectory is a pure function
of backend state + RNG state, with no pool carry-over to lose).

Both backends consume the *same* plan protocol with the *same* orphan
ordering, so the fused trajectory is bit-identical across backends —
unlike the per-event path, whose rejection sampling consumes the RNG
through the alive set's internal order.  Versus the per-event path the
fused path is law-equivalent but a *different seeded trajectory* (the
distribution-parity suite verifies the law; ``fast_warm`` set the
precedent).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


class WindowDrawPlan:
    """The RNG draws of one fused streaming window, in canonical order.

    Args:
        n: constant network size of the streaming model.
        d: out-degree (requests per newborn).
        rounds: number of rounds the window covers (``W``).
        rng: the driver's generator, advanced by every take.
    """

    __slots__ = ("n", "d", "rounds", "_rng", "_birth_taken")

    def __init__(
        self, n: int, d: int, rounds: int, rng: np.random.Generator
    ) -> None:
        if n < 2:
            raise ConfigurationError(f"window plan needs n >= 2, got {n}")
        if rounds < 1:
            raise ConfigurationError(f"window plan needs rounds >= 1, got {rounds}")
        self.n = int(n)
        self.d = int(d)
        self.rounds = int(rounds)
        self._rng = rng
        self._birth_taken = 0

    def take_birth(self, rounds: int = 1) -> np.ndarray:
        """Birth offsets for the next *rounds* newborns, shape ``(rounds, d)``.

        Uniform over ``[0, n-1)`` — the ``n - 1`` post-death survivors of
        each newborn's round.  Regenerating windows must take one round at
        a time, interleaved with that round's :meth:`take_regen`;
        regeneration-free windows may take the whole window upfront (the
        two consume the generator identically).
        """
        if self._birth_taken + rounds > self.rounds:
            raise ConfigurationError(
                f"window plan covers {self.rounds} rounds; birth draws for "
                f"{self._birth_taken + rounds} requested"
            )
        self._birth_taken += rounds
        return self._rng.integers(0, self.n - 1, size=(rounds, self.d))

    def take_regen(self, count: int) -> np.ndarray:
        """The current round's *count* regeneration draws, over ``[0, n-2)``.

        Consumed in orphan order (ascending ``(source, slot)``), exactly
        *count* draws — the stream position after a round depends only on
        that round's orphan count, identical on every backend and every
        window partition.
        """
        if self.n < 3:
            raise ConfigurationError(
                "regeneration draws need n >= 3 (no third node to re-target)"
            )
        return self._rng.integers(0, self.n - 2, size=count)
