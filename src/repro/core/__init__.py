"""Dynamic-graph core: node registry, slot-based topology, snapshots, policies."""

from repro.core.edge_policy import (
    CappedRegenerationPolicy,
    EdgePolicy,
    NoRegenerationPolicy,
    RegenerationPolicy,
)
from repro.core.graph import DynamicGraphState
from repro.core.node import NodeRecord
from repro.core.snapshot import Snapshot

__all__ = [
    "CappedRegenerationPolicy",
    "DynamicGraphState",
    "EdgePolicy",
    "NodeRecord",
    "NoRegenerationPolicy",
    "RegenerationPolicy",
    "Snapshot",
]
