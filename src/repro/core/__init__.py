"""Dynamic-graph core: node registry, slot-based topology, snapshots, policies.

Topology storage is pluggable (see :mod:`repro.core.backend`): the
dict-based reference backend and the vectorized array backend implement the
same :class:`GraphBackend` interface and produce bit-identical seeded
trajectories on the per-event path.
"""

from repro.core.array_backend import ArraySlotBackend
from repro.core.backend import (
    BACKEND_NAMES,
    GraphBackend,
    create_backend,
    default_backend_name,
    use_backend,
)
from repro.core.edge_policy import (
    BoundedInDegreePolicy,
    CappedRegenerationPolicy,
    EdgePolicy,
    NoRegenerationPolicy,
    RAESPolicy,
    RegenerationPolicy,
)
from repro.core.graph import DictBackend, DynamicGraphState
from repro.core.node import NodeRecord
from repro.core.snapshot import Snapshot

__all__ = [
    "ArraySlotBackend",
    "BACKEND_NAMES",
    "BoundedInDegreePolicy",
    "CappedRegenerationPolicy",
    "DictBackend",
    "DynamicGraphState",
    "EdgePolicy",
    "GraphBackend",
    "NodeRecord",
    "NoRegenerationPolicy",
    "RAESPolicy",
    "RegenerationPolicy",
    "Snapshot",
    "create_backend",
    "default_backend_name",
    "use_backend",
]
