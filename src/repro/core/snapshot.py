"""Immutable topology snapshots.

A :class:`Snapshot` is the object all analysis code operates on: it freezes
the node set, adjacency, birth times, and out-slots of a dynamic graph at
one instant (the paper's ``G_t``).  Snapshots convert to :mod:`networkx`
graphs for interoperability, and expose the handful of graph queries the
analyses need (boundaries, degrees, components) without the conversion cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

import networkx as nx


@dataclass(frozen=True)
class Snapshot:
    """An immutable picture of the network at time ``time``.

    Attributes:
        time: simulation time of the snapshot.
        nodes: alive node ids.
        adjacency: distinct undirected neighbours of each alive node.
        birth_times: birth time of each alive node (for age analyses).
        out_slots: the out-request slots of each alive node (``None``
            entries are dead-destination slots in no-regen models).
    """

    time: float
    nodes: frozenset[int]
    adjacency: Mapping[int, frozenset[int]]
    birth_times: Mapping[int, float]
    out_slots: Mapping[int, tuple[int | None, ...]]

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------

    def num_nodes(self) -> int:
        return len(self.nodes)

    def num_edges(self) -> int:
        """Number of distinct undirected edges (memoized: the topology is
        frozen, so the first count is definitive).

        ``functools.cached_property`` does not compose with frozen
        dataclasses, so the cache is stashed with ``object.__setattr__``
        — it lives outside the dataclass fields and therefore does not
        affect equality or the serialised form.
        """
        cached = self.__dict__.get("_num_edges")
        if cached is None:
            cached = sum(len(nbrs) for nbrs in self.adjacency.values()) // 2
            object.__setattr__(self, "_num_edges", cached)
        return cached

    def degree(self, node_id: int) -> int:
        return len(self.adjacency[node_id])

    def degrees(self) -> dict[int, int]:
        """Node → distinct-neighbour degree (memoized; treat as read-only).

        Repeated callers (probe seed selection, degree censuses) get the
        same dict object back — copy before mutating.
        """
        cached = self.__dict__.get("_degrees")
        if cached is None:
            cached = {u: len(nbrs) for u, nbrs in self.adjacency.items()}
            object.__setattr__(self, "_degrees", cached)
        return cached

    def age(self, node_id: int) -> float:
        """Age of *node_id* at snapshot time."""
        return self.time - self.birth_times[node_id]

    def ages(self) -> dict[int, float]:
        return {u: self.time - b for u, b in self.birth_times.items()}

    def isolated_nodes(self) -> set[int]:
        """Nodes with no incident edges."""
        return {u for u, nbrs in self.adjacency.items() if not nbrs}

    # ------------------------------------------------------------------
    # set boundaries (Definition 3.1)
    # ------------------------------------------------------------------

    def outer_boundary(self, subset: Iterable[int]) -> set[int]:
        """``∂out(S)``: nodes outside *subset* adjacent to it."""
        inside = set(subset)
        boundary: set[int] = set()
        for u in inside:
            for v in self.adjacency[u]:
                if v not in inside:
                    boundary.add(v)
        return boundary

    def expansion_of(self, subset: Iterable[int]) -> float:
        """``|∂out(S)| / |S|`` for a non-empty subset."""
        inside = set(subset)
        if not inside:
            raise ValueError("expansion of the empty set is undefined")
        return len(self.outer_boundary(inside)) / len(inside)

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serialisable representation (round-trips via from_dict).

        Dict keys are stringified node ids so the output survives
        ``json.dumps``/``json.loads`` unchanged.
        """
        return {
            "time": self.time,
            "nodes": sorted(self.nodes),
            "adjacency": {
                str(u): sorted(nbrs) for u, nbrs in self.adjacency.items()
            },
            "birth_times": {str(u): b for u, b in self.birth_times.items()},
            "out_slots": {
                str(u): list(slots) for u, slots in self.out_slots.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Snapshot":
        """Rebuild a snapshot produced by :meth:`to_dict`."""
        nodes = frozenset(int(u) for u in payload["nodes"])
        return cls(
            time=float(payload["time"]),
            nodes=nodes,
            adjacency={
                int(u): frozenset(int(v) for v in nbrs)
                for u, nbrs in payload["adjacency"].items()
            },
            birth_times={
                int(u): float(b) for u, b in payload["birth_times"].items()
            },
            out_slots={
                int(u): tuple(
                    None if t is None else int(t) for t in slots
                )
                for u, slots in payload["out_slots"].items()
            },
        )

    def csr_view(self):
        """Export as a :class:`~repro.core.csr.CSRView` (built once).

        The bridge from the frozen dict representation into the
        vectorized analysis plane — used by the parity suite and by
        pipelines that hold snapshots but want the fast analyses.
        """
        from repro.core.csr import csr_view_from_snapshot

        return csr_view_from_snapshot(self)

    def to_networkx(self) -> nx.Graph:
        """Export as a simple undirected :class:`networkx.Graph`.

        Node attributes: ``birth_time`` and ``age``.
        """
        graph = nx.Graph()
        for u in self.nodes:
            graph.add_node(u, birth_time=self.birth_times[u], age=self.age(u))
        for u, nbrs in self.adjacency.items():
            for v in nbrs:
                if u < v:
                    graph.add_edge(u, v)
        return graph

    def subgraph_adjacency(self, subset: Iterable[int]) -> dict[int, set[int]]:
        """Adjacency restricted to *subset* (plain dict-of-sets)."""
        inside = set(subset)
        return {u: set(self.adjacency[u]) & inside for u in inside}

    def connected_components(self) -> list[set[int]]:
        """Connected components, largest first (BFS, no networkx needed)."""
        unseen = set(self.nodes)
        components: list[set[int]] = []
        while unseen:
            root = next(iter(unseen))
            component = {root}
            frontier = [root]
            unseen.discard(root)
            while frontier:
                u = frontier.pop()
                for v in self.adjacency[u]:
                    if v in unseen:
                        unseen.discard(v)
                        component.add(v)
                        frontier.append(v)
            components.append(component)
        components.sort(key=len, reverse=True)
        return components
