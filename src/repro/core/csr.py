"""The CSR analysis plane: zero-copy topology views for vectorized analyses.

A :class:`CSRView` is the *measurement* counterpart of
:class:`~repro.core.snapshot.Snapshot`: where a snapshot freezes the
topology into Python dicts of frozensets (the readable reference
representation), a view exposes the same instant as a handful of NumPy
arrays — a CSR adjacency over *verts* (storage indices), the id/birth
arrays aligned with those verts, and the alive verts in canonical
ascending-node-id order.  Every hot analysis (expansion probes, degree
summaries, isolated/component censuses) has a vectorized implementation
on top of this structure that returns results identical to the dict
path.

On the :class:`~repro.core.array_backend.ArraySlotBackend` a view is
**zero-copy**: ``indptr``/``indices`` are the backend's lazily rebuilt
CSR and ``vert_ids``/``birth`` alias its dense row arrays, so building a
view costs one alive-row argsort instead of an O(n·d) dict freeze.  On
the dict backend (or from a snapshot) the arrays are built once, in one
pass, for parity testing and mixed pipelines.

**Lifetime contract:** a view aliases live backend storage, so it is
only valid until the next topology mutation — use it within the
observation window that built it (exactly what
:class:`~repro.scenario.simulation.Simulation` does) and reach for a
:class:`Snapshot` when the frozen topology must outlive the window.

The module also hosts the canonical 64-bit set-hashing helpers
(:func:`mix64`, :func:`candidate_key`) shared by the dict-path and
CSR-path expansion portfolios: both paths deduplicate candidate sets
with the *same* keys, so their ``candidates_checked`` counts and probe
results agree exactly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.core.snapshot import Snapshot

_MASK64 = (1 << 64) - 1
_MIX_A = 0x9E3779B97F4A7C15
_MIX_B = 0xBF58476D1CE4E5B9
_MIX_C = 0x94D049BB133111EB


def mix64(value: int) -> int:
    """SplitMix64 finalizer of one integer (scalar reference path)."""
    z = (value + _MIX_A) & _MASK64
    z = ((z ^ (z >> 30)) * _MIX_B) & _MASK64
    z = ((z ^ (z >> 27)) * _MIX_C) & _MASK64
    return z ^ (z >> 31)


def mix64_array(values: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer, vectorized; bit-identical to :func:`mix64`."""
    z = values.astype(np.uint64) + np.uint64(_MIX_A)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(_MIX_B)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(_MIX_C)
    return z ^ (z >> np.uint64(31))


def candidate_key(size: int, xor_of_mixed_ids: int) -> int:
    """Canonical 64-bit key of a candidate node set.

    ``xor_of_mixed_ids`` is the XOR of :func:`mix64` over the member node
    ids — order-independent and incrementally updatable, which is what
    lets the vectorized BFS/greedy sweeps maintain it per frontier step.
    Mixing the size back in separates sets whose XORs happen to agree.
    Both expansion paths deduplicate with this exact key, so they skip
    (and count) the identical candidates.
    """
    return mix64(xor_of_mixed_ids ^ mix64(size))


def candidate_key_array(sizes: np.ndarray, xors: np.ndarray) -> np.ndarray:
    """Vectorized :func:`candidate_key` (bit-identical to the scalar)."""
    return mix64_array(xors ^ mix64_array(sizes))


def concat_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``[starts[i], starts[i]+counts[i])`` index ranges.

    The standard cumsum gather trick behind every CSR neighbour sweep:
    the result indexes ``indices`` for all listed verts at once.
    """
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    nonzero = counts > 0
    starts = np.asarray(starts, dtype=np.int64)[nonzero]
    counts = counts[nonzero]
    out = np.ones(total, dtype=np.int64)
    out[0] = starts[0]
    ends = np.cumsum(counts)
    out[ends[:-1]] = starts[1:] - (starts[:-1] + counts[:-1] - 1)
    return np.cumsum(out)


class CSRView:
    """Read-only CSR picture of the network at time ``time``.

    *Verts* are storage indices: backend rows on the array backend,
    positions in ascending-id order for dict-built views.  ``vert_ids``
    maps vert → node id (−1 on unused verts), ``alive_verts`` lists the
    verts of alive nodes in **ascending node-id order** (the canonical
    candidate order the analyses share), and ``indptr``/``indices`` hold
    the distinct-neighbour adjacency in both directions.
    """

    __slots__ = (
        "time",
        "indptr",
        "indices",
        "vert_ids",
        "birth",
        "alive_verts",
        "_vert_of",
        "_ids",
        "_degrees",
        "_mix",
    )

    def __init__(
        self,
        time: float,
        indptr: np.ndarray,
        indices: np.ndarray,
        vert_ids: np.ndarray,
        birth: np.ndarray,
        alive_verts: np.ndarray,
        vert_of: dict[int, int] | None = None,
    ) -> None:
        self.time = float(time)
        self.indptr = indptr
        self.indices = indices
        self.vert_ids = vert_ids
        self.birth = birth
        self.alive_verts = alive_verts
        self._vert_of = vert_of
        self._ids: np.ndarray | None = None
        self._degrees: np.ndarray | None = None
        self._mix: np.ndarray | None = None

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of alive nodes."""
        return int(self.alive_verts.size)

    @property
    def space(self) -> int:
        """Size of the vert index space (masks must use this length)."""
        return int(self.vert_ids.size)

    @property
    def ids(self) -> np.ndarray:
        """Alive node ids, ascending (aligned with :attr:`alive_verts`)."""
        if self._ids is None:
            self._ids = self.vert_ids[self.alive_verts]
        return self._ids

    @property
    def degrees(self) -> np.ndarray:
        """Distinct-neighbour degrees aligned with :attr:`ids`."""
        if self._degrees is None:
            self._degrees = (
                self.indptr[self.alive_verts + 1] - self.indptr[self.alive_verts]
            )
        return self._degrees

    @property
    def mix(self) -> np.ndarray:
        """Per-vert :func:`mix64` of the node id (candidate-set hashing)."""
        if self._mix is None:
            self._mix = mix64_array(self.vert_ids)
        return self._mix

    def num_edges(self) -> int:
        """Number of distinct undirected edges."""
        return int(self.indices.size) // 2

    @property
    def nbytes(self) -> int:
        """Bytes addressed by the view's arrays (lazy caches once built).

        Aliased backend storage is counted as-is: the hook reports what
        the analysis plane actually touches per window, which is what
        the array backend's compact (int32) mode shrinks.
        """
        total = (
            self.indptr.nbytes
            + self.indices.nbytes
            + self.vert_ids.nbytes
            + self.birth.nbytes
            + self.alive_verts.nbytes
        )
        for cached in (self._ids, self._degrees, self._mix):
            if cached is not None:
                total += cached.nbytes
        return total

    def vert_of(self, node_id: int) -> int:
        """Vert of an alive node id."""
        if self._vert_of is None:
            ids = self.ids
            self._vert_of = dict(
                zip(ids.tolist(), self.alive_verts.tolist())
            )
        return self._vert_of[node_id]

    def verts_for(self, node_ids: Iterable[int]) -> np.ndarray:
        """Verts of alive *node_ids* (order preserved)."""
        return np.fromiter(
            (self.vert_of(u) for u in node_ids), dtype=np.int64
        )

    def degrees_of_verts(self, verts: np.ndarray) -> np.ndarray:
        return self.indptr[verts + 1] - self.indptr[verts]

    def neighbors_of_vert(self, vert: int) -> np.ndarray:
        """Neighbour verts of one vert (a slice of :attr:`indices`)."""
        return self.indices[self.indptr[vert] : self.indptr[vert + 1]]

    # ------------------------------------------------------------------
    # bulk sweeps
    # ------------------------------------------------------------------

    def gather_neighbors(
        self, verts: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Flattened neighbour verts of *verts* plus their owner positions.

        Returns ``(flat, owner_pos)`` where ``flat[k]`` is a neighbour of
        ``verts[owner_pos[k]]``; owner positions are non-decreasing.
        """
        counts = self.degrees_of_verts(verts)
        owner_pos = np.repeat(np.arange(verts.size, dtype=np.int64), counts)
        flat = self.indices[concat_ranges(self.indptr[verts], counts)]
        return flat, owner_pos

    def boundary_count(self, member_verts: np.ndarray) -> int:
        """``|∂out(S)|`` of the distinct vert set *member_verts*.

        Allocation stays O(S·d̄): gather the members' neighbours, dedupe
        with one sort, and drop the members themselves with a
        searchsorted membership test (no space-sized scratch mask).
        """
        if member_verts.size == 0:
            return 0
        flat, _ = self.gather_neighbors(member_verts)
        if flat.size == 0:
            return 0
        flat = np.sort(flat)
        first = np.empty(flat.size, dtype=bool)
        first[0] = True
        np.not_equal(flat[1:], flat[:-1], out=first[1:])
        distinct = flat[first]
        members = np.sort(member_verts)
        pos = np.searchsorted(members, distinct)
        pos[pos == members.size] = members.size - 1
        inside = members[pos] == distinct
        return int(distinct.size - inside.sum())

    def ids_sorted(self, verts: np.ndarray) -> tuple[int, ...]:
        """Node ids of *verts* as an ascending tuple (witness format)."""
        return tuple(np.sort(self.vert_ids[verts]).tolist())


def csr_view_from_adjacency(
    time: float,
    ids: list[int],
    neighbors_of: dict[int, Iterable[int]] | None = None,
    neighbors_fn=None,
    birth_fn=None,
) -> CSRView:
    """Build a compact view (verts = ascending-id positions) in one pass."""
    ids = sorted(ids)
    n = len(ids)
    vert_of = {u: i for i, u in enumerate(ids)}
    counts = np.zeros(n, dtype=np.int64)
    flat: list[int] = []
    for i, u in enumerate(ids):
        nbrs = neighbors_of[u] if neighbors_of is not None else neighbors_fn(u)
        row = [vert_of[v] for v in nbrs]
        counts[i] = len(row)
        flat.extend(row)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    indices = np.asarray(flat, dtype=np.int64)
    birth = np.fromiter(
        (birth_fn(u) for u in ids), dtype=np.float64, count=n
    )
    return CSRView(
        time=time,
        indptr=indptr,
        indices=indices,
        vert_ids=np.asarray(ids, dtype=np.int64),
        birth=birth,
        alive_verts=np.arange(n, dtype=np.int64),
        vert_of=vert_of,
    )


def csr_view_from_snapshot(snapshot: "Snapshot") -> CSRView:
    """One-shot view of a frozen :class:`Snapshot` (parity/testing path)."""
    return csr_view_from_adjacency(
        time=snapshot.time,
        ids=list(snapshot.nodes),
        neighbors_of=snapshot.adjacency,
        birth_fn=lambda u: snapshot.birth_times[u],
    )
