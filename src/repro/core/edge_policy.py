"""Edge-creation and edge-repair policies (the paper's topology dynamics).

Two policies implement the paper's two topology dynamics:

* :class:`NoRegenerationPolicy` — Definitions 3.4 (SDG) and 4.9 (PDG):
  edges are created only at birth; a request whose destination dies is
  lost forever (the slot stays ``None``).
* :class:`RegenerationPolicy` — Definitions 3.13 (SDGR) and 4.14 (PDGR):
  whenever a request's destination dies, the owner immediately re-samples
  a fresh uniformly random destination, keeping its out-degree at ``d``
  whenever the network has at least one other node.

Two *bounded-degree* policies extend beyond the paper, probing its §5
open question about fully-random dynamics with bounded degrees:

* :class:`CappedRegenerationPolicy` (see DESIGN.md §5) — regeneration
  with a hard in-degree cap (Bitcoin Core's 125-peer limit): a request is
  retried a few times and then *given up*, so out-degrees may fall below
  ``d`` under a tight cap.
* :class:`RAESPolicy` — the RAES-style dynamic of Cruciani 2025
  ("Maintaining a Bounded Degree Expander in Dynamic Peer-to-Peer
  Networks", arXiv:2506.17757): out-degree exactly ``d``, hard in-degree
  cap ``c·d`` with ``c ≥ 1``; a saturated target rejects the request and
  the requester keeps re-sampling, so total capacity always covers demand
  and every slot is placed almost surely.

Both share :class:`BoundedInDegreePolicy`: a readable sequential
rejection loop on the per-event path (bit-identical seeded trajectories
on every backend), and a vectorized batch path that places whole birth
batches and death-repair waves through the array backend's bulk
accept/reject sampler
(:meth:`~repro.core.array_backend.ArraySlotBackend.place_slots_capped`).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np

from repro.core.backend import GraphBackend
from repro.errors import ConfigurationError
from repro.sim.events import (
    EdgeCreated,
    EdgeDestroyed,
    EventRecord,
    NodeBorn,
    NodeDied,
    NodesDied,
)


class EdgePolicy(ABC):
    """Decides how edge requests are created at birth and repaired at death."""

    def __init__(self, d: int) -> None:
        if d < 1:
            raise ConfigurationError(f"out-degree d must be >= 1, got {d}")
        self.d = d

    def handle_birth(
        self,
        state: GraphBackend,
        node_id: int,
        time: float,
        rng: np.random.Generator,
    ) -> EventRecord:
        """Register the newborn and issue its ``d`` initial requests."""
        state.add_node(node_id, birth_time=time, num_slots=self.d)
        record = EventRecord(time=time, kind=NodeBorn(node_id=node_id))
        targets = state.sample_targets(rng, self.d, exclude=node_id)
        for slot_index, target in enumerate(targets):
            state.assign_slot(node_id, slot_index, target)
            record.edges_created.append(EdgeCreated(source=node_id, target=target))
        return record

    def handle_death(
        self,
        state: GraphBackend,
        node_id: int,
        time: float,
        rng: np.random.Generator,
    ) -> EventRecord:
        """Remove the dying node and repair orphaned requests per policy."""
        record = EventRecord(time=time, kind=NodeDied(node_id=node_id))
        # Destroyed edges: everything incident to the dying node.
        for neighbor in list(state.neighbors(node_id)):
            record.edges_destroyed.append(
                EdgeDestroyed(source=node_id, target=neighbor)
            )
        orphaned = state.remove_node(node_id, death_time=time)
        self.repair_orphans(state, orphaned, time, rng, record)
        return record

    @abstractmethod
    def repair_orphans(
        self,
        state: GraphBackend,
        orphaned: list[tuple[int, int]],
        time: float,
        rng: np.random.Generator,
        record: EventRecord,
    ) -> None:
        """Handle slots whose destination just died."""

    def repair_orphans_batched(
        self,
        state: GraphBackend,
        orphaned: list[tuple[int, int]],
        time: float,
        rng: np.random.Generator,
        record: EventRecord,
    ) -> None:
        """Repair one batched-death wave of orphans (:meth:`handle_deaths`).

        Defaults to the per-event :meth:`repair_orphans`; policies with a
        vectorized repair (the bounded-degree ones) override this so only
        the *batch* path changes — per-event trajectories stay
        bit-identical across backends.
        """
        self.repair_orphans(state, orphaned, time, rng, record)

    # ------------------------------------------------------------------
    # batched churn
    # ------------------------------------------------------------------

    @property
    def supports_batch_birth(self) -> bool:
        """Whether births may be applied through the backend's batch path.

        True exactly when the policy uses the base uniform birth rule —
        a subclass that overrides :meth:`handle_birth` (e.g. the capped
        policy's filtered sampling) must go through the per-node path.
        """
        return type(self).handle_birth is EdgePolicy.handle_birth

    @property
    def round_batch_regenerate(self) -> bool | None:
        """Gate for the fused streaming-round kernel.

        ``True``/``False`` is the *regenerate* argument a fused
        ``apply_round_batch`` window may run with; ``None`` means this
        policy's per-round law is not the plain uniform death →
        regeneration → birth law the kernel implements (bounded-degree
        policies, or any subclass overriding the birth/death hooks), so
        the driver must stay on the per-event path.
        """
        return None

    def handle_births(
        self,
        state: GraphBackend,
        node_ids: list[int],
        times: list[float] | float,
        rng: np.random.Generator,
    ) -> None:
        """Apply a pure-birth batch without per-event records.

        Dispatches to the backend's (possibly vectorized)
        :meth:`~repro.core.backend.GraphBackend.apply_births` when the
        policy uses the base birth rule; otherwise falls back to the
        per-node :meth:`handle_birth` loop so policy overrides apply.
        """
        if self.supports_batch_birth:
            state.apply_births(node_ids, times, self.d, rng)
            return
        times_list = state.birth_times_list(node_ids, times)
        for node_id, time in zip(node_ids, times_list):
            self.handle_birth(state, node_id, time, rng)

    def handle_deaths(
        self,
        state: GraphBackend,
        node_ids: list[int],
        time: float,
        rng: np.random.Generator,
    ) -> EventRecord:
        """Apply a batch of deaths, then repair the surviving orphans once.

        The backend removes every listed node before any repair happens,
        so regenerated requests can never target a node dying in the same
        batch — the semantics of "these nodes left simultaneously".
        Returns one aggregate :class:`NodesDied` record: ``edges_destroyed``
        holds every edge incident to a victim (victim–victim edges once),
        ``edges_created`` every regenerated replacement edge.
        """
        record = EventRecord(time=time, kind=NodesDied(node_ids=tuple(node_ids)))
        seen: set[tuple[int, int]] = set()
        for node_id in node_ids:
            for neighbor in list(state.neighbors(node_id)):
                key = (min(node_id, neighbor), max(node_id, neighbor))
                if key in seen:
                    continue
                seen.add(key)
                record.edges_destroyed.append(
                    EdgeDestroyed(source=node_id, target=neighbor)
                )
        orphaned = state.apply_deaths(node_ids, death_time=time)
        self.repair_orphans_batched(state, orphaned, time, rng, record)
        return record


class NoRegenerationPolicy(EdgePolicy):
    """Lost requests stay lost (SDG / PDG)."""

    @property
    def round_batch_regenerate(self) -> bool | None:
        # Subclasses that change the birth/death/repair hooks fall off
        # the fused kernel's law; detect overrides rather than trusting
        # inheritance.
        if (
            type(self).handle_birth is EdgePolicy.handle_birth
            and type(self).handle_death is EdgePolicy.handle_death
            and type(self).repair_orphans is NoRegenerationPolicy.repair_orphans
        ):
            return False
        return None

    def repair_orphans(
        self,
        state: GraphBackend,
        orphaned: list[tuple[int, int]],
        time: float,
        rng: np.random.Generator,
        record: EventRecord,
    ) -> None:
        # Slots were already cleared by remove_node; nothing to do.
        del state, orphaned, time, rng, record


class RegenerationPolicy(EdgePolicy):
    """Each orphaned request immediately re-samples a fresh uniform target
    (SDGR / PDGR)."""

    @property
    def round_batch_regenerate(self) -> bool | None:
        if (
            type(self).handle_birth is EdgePolicy.handle_birth
            and type(self).handle_death is EdgePolicy.handle_death
            and type(self).repair_orphans is RegenerationPolicy.repair_orphans
        ):
            return True
        return None

    def repair_orphans(
        self,
        state: GraphBackend,
        orphaned: list[tuple[int, int]],
        time: float,
        rng: np.random.Generator,
        record: EventRecord,
    ) -> None:
        for source, slot_index in orphaned:
            targets = state.sample_targets(rng, 1, exclude=source)
            if not targets:
                continue  # the source is the only node left
            state.assign_slot(source, slot_index, targets[0])
            record.edges_created.append(
                EdgeCreated(source=source, target=targets[0])
            )


class BoundedInDegreePolicy(EdgePolicy):
    """Shared mechanics of the bounded-in-degree policies (capped + RAES).

    A request (at birth or regeneration) re-samples its target until it
    finds one whose current in-slot count is below ``max_in_degree`` — a
    saturated target *rejects* the request.  After *max_attempts*
    rejections the slot is left empty for now (it becomes repairable at
    the next incident death).

    Two placement paths:

    * **per-event** (:meth:`handle_birth` / :meth:`repair_orphans`) — the
      readable sequential rejection loop, consuming the RNG through
      ``sample_targets`` exactly like the unbounded policies, so seeded
      trajectories are bit-identical across backends;
    * **batched** (:meth:`handle_births` / :meth:`repair_orphans_batched`)
      — on a backend advertising ``supports_bulk_placement`` every
      pending slot of the batch is placed through one vectorized
      accept/reject pass
      (:meth:`~repro.core.array_backend.ArraySlotBackend.place_slots_capped`);
      same placement law, different RNG stream consumption, exactly like
      the backend's ``apply_births``.  Set ``bulk=False`` to force the
      sequential loop everywhere (benchmark/diagnostic knob).
    """

    def __init__(
        self, d: int, max_in_degree: int, max_attempts: int, bulk: bool = True
    ) -> None:
        super().__init__(d)
        if max_in_degree < 1:
            raise ConfigurationError("max_in_degree must be >= 1")
        if max_attempts < 1:
            # A non-positive budget would silently skip every placement
            # loop: births and repairs would produce zero edges, no error.
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {max_attempts}"
            )
        self.max_in_degree = int(max_in_degree)
        self.max_attempts = int(max_attempts)
        self.bulk = bool(bulk)

    #: Candidate pool of a batched birth: ``False`` mirrors the sequential
    #: law (newborn k only targets the m0+k nodes present when it joins);
    #: ``True`` is the RAES parallel round — every node present in the
    #: round is a candidate, so prefix saturation cannot starve an early
    #: newborn out of its (tiny) pool.
    bulk_birth_full_pool = False

    # ------------------------------------------------------------------
    # per-event path (sequential, backend-parity preserving)
    # ------------------------------------------------------------------

    def _pick_capped_target(
        self, state: GraphBackend, source: int, rng: np.random.Generator
    ) -> int | None:
        for _ in range(self.max_attempts):
            targets = state.sample_targets(rng, 1, exclude=source)
            if not targets:
                return None
            target = targets[0]
            if state.in_slot_count(target) < self.max_in_degree:
                return target
        return None

    def handle_birth(
        self,
        state: GraphBackend,
        node_id: int,
        time: float,
        rng: np.random.Generator,
    ) -> EventRecord:
        state.add_node(node_id, birth_time=time, num_slots=self.d)
        record = EventRecord(time=time, kind=NodeBorn(node_id=node_id))
        for slot_index in range(self.d):
            target = self._pick_capped_target(state, node_id, rng)
            if target is None:
                continue
            state.assign_slot(node_id, slot_index, target)
            record.edges_created.append(EdgeCreated(source=node_id, target=target))
        return record

    def repair_orphans(
        self,
        state: GraphBackend,
        orphaned: list[tuple[int, int]],
        time: float,
        rng: np.random.Generator,
        record: EventRecord,
    ) -> None:
        for source, slot_index in orphaned:
            target = self._pick_capped_target(state, source, rng)
            if target is None:
                continue
            state.assign_slot(source, slot_index, target)
            record.edges_created.append(EdgeCreated(source=source, target=target))

    # ------------------------------------------------------------------
    # batched path (vectorized accept/reject on capable backends)
    # ------------------------------------------------------------------

    def _use_bulk(self, state: GraphBackend) -> bool:
        return self.bulk and getattr(state, "supports_bulk_placement", False)

    def handle_births(
        self,
        state: GraphBackend,
        node_ids: list[int],
        times: list[float] | float,
        rng: np.random.Generator,
    ) -> None:
        """Apply a pure-birth batch, placing all slots in bulk when possible.

        By default mirrors the pool semantics of the backend's
        ``apply_births`` — newborn ``k`` only targets the ``m0 + k`` nodes
        present when it joins (earlier newborns of the same batch
        included, itself and later newborns excluded).  Policies setting
        :attr:`bulk_birth_full_pool` instead let every request draw from
        the whole post-batch population.
        """
        if not self._use_bulk(state):
            times_list = state.birth_times_list(node_ids, times)
            for node_id, time in zip(node_ids, times_list):
                self.handle_birth(state, node_id, time, rng)
            return
        m0 = state.num_alive()
        rows = state.add_nodes(node_ids, times, self.d)
        count = len(node_ids)
        sources = np.repeat(np.asarray(node_ids, dtype=np.int64), self.d)
        slots = np.tile(np.arange(self.d, dtype=np.int64), count)
        if self.bulk_birth_full_pool:
            highs = None
        else:
            highs = np.repeat(m0 + np.arange(count, dtype=np.int64), self.d)
        state.place_slots_capped(
            sources, slots, self.max_in_degree, self.max_attempts, rng,
            highs=highs,
            source_rows=None if rows is None else np.repeat(rows, self.d),
        )

    def repair_orphans_batched(
        self,
        state: GraphBackend,
        orphaned: list[tuple[int, int]],
        time: float,
        rng: np.random.Generator,
        record: EventRecord,
    ) -> None:
        """Repair a whole death batch's orphans in one accept/reject pass."""
        if not self._use_bulk(state):
            self.repair_orphans(state, orphaned, time, rng, record)
            return
        if not orphaned:
            return
        sources = np.asarray([s for s, _ in orphaned], dtype=np.int64)
        slots = np.asarray([j for _, j in orphaned], dtype=np.int64)
        targets = state.place_slots_capped(
            sources, slots, self.max_in_degree, self.max_attempts, rng
        )
        for source, target in zip(sources.tolist(), targets.tolist()):
            if target >= 0:
                record.edges_created.append(
                    EdgeCreated(source=source, target=target)
                )


class CappedRegenerationPolicy(BoundedInDegreePolicy):
    """Regeneration with a maximum in-degree (extension beyond the paper).

    A request (at birth or regeneration) is retried up to *max_attempts*
    times until it finds a target whose current in-slot count is below
    ``max_in_degree``; if every attempt fails the slot is left empty for
    now (it will be repaired at the next incident death).  With
    ``max_in_degree=inf`` this reduces to :class:`RegenerationPolicy`.
    """

    def __init__(
        self,
        d: int,
        max_in_degree: int,
        max_attempts: int = 16,
        bulk: bool = True,
    ) -> None:
        super().__init__(d, max_in_degree, max_attempts, bulk=bulk)


class RAESPolicy(BoundedInDegreePolicy):
    """RAES-style bounded-degree expander dynamic (Cruciani 2025).

    "Request a link, then Accept if Enough Space" (arXiv:2506.17757,
    building on Becchetti et al.): every node keeps out-degree exactly
    ``d``; every node accepts at most ``c·d`` in-links.  A request whose
    target is saturated is rejected and immediately re-sampled.  With
    ``c > 1`` (the regime the RAES analysis assumes) capacity strictly
    exceeds demand, an unsaturated target exists almost surely, and the
    re-sampling loop terminates quickly — *max_attempts* (default 64,
    far above the capped policy's 16) is only a livelock guard.  The
    boundary ``c = 1`` is accepted but tight: with zero slack the last
    requests may fail to find the few free slots by uniform sampling.

    The constructor rejects a cap below ``d`` at construction: with
    ``c·d < d`` the network could never hold every node's ``d`` requests
    even in principle, so the "out-degree exactly d" contract would be
    unsatisfiable.
    """

    #: A batched RAES birth round samples the whole present population —
    #: the parallel RAES dynamic — so a tiny sequential-prefix pool can
    #: never strand a newborn's requests behind saturated targets.
    bulk_birth_full_pool = True

    def __init__(
        self,
        d: int,
        c: float = 2.0,
        max_attempts: int = 64,
        bulk: bool = True,
    ) -> None:
        if d < 1:
            raise ConfigurationError(f"out-degree d must be >= 1, got {d}")
        cap = int(math.floor(c * d))
        if cap < d:
            raise ConfigurationError(
                f"RAES needs an in-degree cap of at least d: c={c} gives "
                f"cap floor(c*d)={cap} < d={d}, which can never place all slots"
            )
        super().__init__(d, cap, max_attempts, bulk=bulk)
        self.c = float(c)
