"""Edge-creation and edge-repair policies (the paper's topology dynamics).

Two policies implement the paper's two topology dynamics:

* :class:`NoRegenerationPolicy` — Definitions 3.4 (SDG) and 4.9 (PDG):
  edges are created only at birth; a request whose destination dies is
  lost forever (the slot stays ``None``).
* :class:`RegenerationPolicy` — Definitions 3.13 (SDGR) and 4.14 (PDGR):
  whenever a request's destination dies, the owner immediately re-samples
  a fresh uniformly random destination, keeping its out-degree at ``d``
  whenever the network has at least one other node.

:class:`CappedRegenerationPolicy` is an *extension* beyond the paper (see
DESIGN.md §5): it bounds the in-degree of every node, probing the §5 open
question about bounded-degree dynamics (Bitcoin Core's 125-peer cap).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.core.backend import GraphBackend
from repro.errors import ConfigurationError
from repro.sim.events import (
    EdgeCreated,
    EdgeDestroyed,
    EventRecord,
    NodeBorn,
    NodeDied,
    NodesDied,
)


class EdgePolicy(ABC):
    """Decides how edge requests are created at birth and repaired at death."""

    def __init__(self, d: int) -> None:
        if d < 1:
            raise ConfigurationError(f"out-degree d must be >= 1, got {d}")
        self.d = d

    def handle_birth(
        self,
        state: GraphBackend,
        node_id: int,
        time: float,
        rng: np.random.Generator,
    ) -> EventRecord:
        """Register the newborn and issue its ``d`` initial requests."""
        state.add_node(node_id, birth_time=time, num_slots=self.d)
        record = EventRecord(time=time, kind=NodeBorn(node_id=node_id))
        targets = state.sample_targets(rng, self.d, exclude=node_id)
        for slot_index, target in enumerate(targets):
            state.assign_slot(node_id, slot_index, target)
            record.edges_created.append(EdgeCreated(source=node_id, target=target))
        return record

    def handle_death(
        self,
        state: GraphBackend,
        node_id: int,
        time: float,
        rng: np.random.Generator,
    ) -> EventRecord:
        """Remove the dying node and repair orphaned requests per policy."""
        record = EventRecord(time=time, kind=NodeDied(node_id=node_id))
        # Destroyed edges: everything incident to the dying node.
        for neighbor in list(state.neighbors(node_id)):
            record.edges_destroyed.append(
                EdgeDestroyed(source=node_id, target=neighbor)
            )
        orphaned = state.remove_node(node_id, death_time=time)
        self.repair_orphans(state, orphaned, time, rng, record)
        return record

    @abstractmethod
    def repair_orphans(
        self,
        state: GraphBackend,
        orphaned: list[tuple[int, int]],
        time: float,
        rng: np.random.Generator,
        record: EventRecord,
    ) -> None:
        """Handle slots whose destination just died."""

    # ------------------------------------------------------------------
    # batched churn
    # ------------------------------------------------------------------

    @property
    def supports_batch_birth(self) -> bool:
        """Whether births may be applied through the backend's batch path.

        True exactly when the policy uses the base uniform birth rule —
        a subclass that overrides :meth:`handle_birth` (e.g. the capped
        policy's filtered sampling) must go through the per-node path.
        """
        return type(self).handle_birth is EdgePolicy.handle_birth

    def handle_births(
        self,
        state: GraphBackend,
        node_ids: list[int],
        times: list[float] | float,
        rng: np.random.Generator,
    ) -> None:
        """Apply a pure-birth batch without per-event records.

        Dispatches to the backend's (possibly vectorized)
        :meth:`~repro.core.backend.GraphBackend.apply_births` when the
        policy uses the base birth rule; otherwise falls back to the
        per-node :meth:`handle_birth` loop so policy overrides apply.
        """
        if self.supports_batch_birth:
            state.apply_births(node_ids, times, self.d, rng)
            return
        times_list = state.birth_times_list(node_ids, times)
        for node_id, time in zip(node_ids, times_list):
            self.handle_birth(state, node_id, time, rng)

    def handle_deaths(
        self,
        state: GraphBackend,
        node_ids: list[int],
        time: float,
        rng: np.random.Generator,
    ) -> EventRecord:
        """Apply a batch of deaths, then repair the surviving orphans once.

        The backend removes every listed node before any repair happens,
        so regenerated requests can never target a node dying in the same
        batch — the semantics of "these nodes left simultaneously".
        Returns one aggregate :class:`NodesDied` record: ``edges_destroyed``
        holds every edge incident to a victim (victim–victim edges once),
        ``edges_created`` every regenerated replacement edge.
        """
        record = EventRecord(time=time, kind=NodesDied(node_ids=tuple(node_ids)))
        seen: set[tuple[int, int]] = set()
        for node_id in node_ids:
            for neighbor in list(state.neighbors(node_id)):
                key = (min(node_id, neighbor), max(node_id, neighbor))
                if key in seen:
                    continue
                seen.add(key)
                record.edges_destroyed.append(
                    EdgeDestroyed(source=node_id, target=neighbor)
                )
        orphaned = state.apply_deaths(node_ids, death_time=time)
        self.repair_orphans(state, orphaned, time, rng, record)
        return record


class NoRegenerationPolicy(EdgePolicy):
    """Lost requests stay lost (SDG / PDG)."""

    def repair_orphans(
        self,
        state: GraphBackend,
        orphaned: list[tuple[int, int]],
        time: float,
        rng: np.random.Generator,
        record: EventRecord,
    ) -> None:
        # Slots were already cleared by remove_node; nothing to do.
        del state, orphaned, time, rng, record


class RegenerationPolicy(EdgePolicy):
    """Each orphaned request immediately re-samples a fresh uniform target
    (SDGR / PDGR)."""

    def repair_orphans(
        self,
        state: GraphBackend,
        orphaned: list[tuple[int, int]],
        time: float,
        rng: np.random.Generator,
        record: EventRecord,
    ) -> None:
        for source, slot_index in orphaned:
            targets = state.sample_targets(rng, 1, exclude=source)
            if not targets:
                continue  # the source is the only node left
            state.assign_slot(source, slot_index, targets[0])
            record.edges_created.append(
                EdgeCreated(source=source, target=targets[0])
            )


class CappedRegenerationPolicy(EdgePolicy):
    """Regeneration with a maximum in-degree (extension beyond the paper).

    A request (at birth or regeneration) is retried up to *max_attempts*
    times until it finds a target whose current in-slot count is below
    ``max_in_degree``; if every attempt fails the slot is left empty for
    now (it will be repaired at the next incident death).  With
    ``max_in_degree=inf`` this reduces to :class:`RegenerationPolicy`.
    """

    def __init__(self, d: int, max_in_degree: int, max_attempts: int = 16) -> None:
        super().__init__(d)
        if max_in_degree < 1:
            raise ConfigurationError("max_in_degree must be >= 1")
        self.max_in_degree = max_in_degree
        self.max_attempts = max_attempts

    def _pick_capped_target(
        self, state: GraphBackend, source: int, rng: np.random.Generator
    ) -> int | None:
        for _ in range(self.max_attempts):
            targets = state.sample_targets(rng, 1, exclude=source)
            if not targets:
                return None
            target = targets[0]
            if state.in_slot_count(target) < self.max_in_degree:
                return target
        return None

    def handle_birth(
        self,
        state: GraphBackend,
        node_id: int,
        time: float,
        rng: np.random.Generator,
    ) -> EventRecord:
        state.add_node(node_id, birth_time=time, num_slots=self.d)
        record = EventRecord(time=time, kind=NodeBorn(node_id=node_id))
        for slot_index in range(self.d):
            target = self._pick_capped_target(state, node_id, rng)
            if target is None:
                continue
            state.assign_slot(node_id, slot_index, target)
            record.edges_created.append(EdgeCreated(source=node_id, target=target))
        return record

    def repair_orphans(
        self,
        state: GraphBackend,
        orphaned: list[tuple[int, int]],
        time: float,
        rng: np.random.Generator,
        record: EventRecord,
    ) -> None:
        for source, slot_index in orphaned:
            target = self._pick_capped_target(state, source, rng)
            if target is None:
                continue
            state.assign_slot(source, slot_index, target)
            record.edges_created.append(EdgeCreated(source=source, target=target))
