"""Per-node bookkeeping.

Every node carries exactly ``d`` *out-request slots* — the "d independent
connections" of Definitions 3.4/3.13/4.9/4.14.  A slot stores the id of its
current destination, or ``None`` when the destination has died and the model
does not regenerate edges.  Distinguishing out-slots from the undirected
adjacency is essential: the regeneration rule and the edge-probability
lemmas (3.14, 4.15) are statements about slots, not undirected edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class NodeRecord:
    """State of a single (alive or dead) node.

    Attributes:
        node_id: unique, monotonically increasing id (birth order).
        birth_time: simulation time at which the node joined.
        death_time: time at which the node left, or ``None`` while alive.
        out_slots: current destination of each of the node's ``d`` requests;
            ``None`` marks a slot whose destination died (no-regen models)
            or that could not be filled (empty network at birth).
    """

    node_id: int
    birth_time: float
    death_time: float | None = None
    out_slots: list[int | None] = field(default_factory=list)

    @property
    def is_alive(self) -> bool:
        return self.death_time is None

    def age(self, now: float) -> float:
        """Age of the node at time *now* (time since birth)."""
        return now - self.birth_time

    def out_degree(self) -> int:
        """Number of currently-assigned out-slots."""
        return sum(1 for slot in self.out_slots if slot is not None)
