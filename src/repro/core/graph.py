"""Dict-based reference topology backend.

The original mutable dynamic-graph state shared by all four models, now one
of two :class:`~repro.core.backend.GraphBackend` implementations (the other
is :class:`~repro.core.array_backend.ArraySlotBackend`).  It tracks,
incrementally and in O(1) amortised per operation:

* the set of alive nodes (with O(1) uniform sampling, via
  :class:`~repro.util.sampling.IndexedSet`);
* per-node out-request slots (see :mod:`repro.core.node`);
* the reverse index ``in_refs`` mapping a node to the set of
  ``(source, slot_index)`` pairs currently pointing at it — this is what
  makes deaths O(degree): a dying node knows exactly which slots it orphans;
* the undirected adjacency with multiplicities, because two slots may
  connect the same pair (the d choices are independent, with replacement)
  and an undirected edge disappears only when its last supporting slot does;
* the distinct undirected edge count, maintained incrementally so
  :meth:`DictBackend.num_edges` is O(1) instead of re-summing all rows.

The state is policy-agnostic: birth/death/regeneration *decisions* live in
:mod:`repro.core.edge_policy`; this module only applies topology deltas and
maintains invariants (checkable via :meth:`DictBackend.check_invariants`).
``DynamicGraphState`` remains as a backward-compatible alias.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.backend import GraphBackend
from repro.core.node import NodeRecord
from repro.core.snapshot import Snapshot
from repro.errors import SimulationError


class DictBackend(GraphBackend):
    """Nodes + slot-based topology of a dynamic network at one instant."""

    def __init__(self) -> None:
        super().__init__()
        self.records: dict[int, NodeRecord] = {}
        self.in_refs: dict[int, set[tuple[int, int]]] = {}
        self.adj: dict[int, dict[int, int]] = {}
        self._edge_count = 0

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------

    def neighbors(self, node_id: int) -> Iterable[int]:
        """Current undirected neighbours of *node_id*."""
        return self.adj.get(node_id, {}).keys()

    def degree(self, node_id: int) -> int:
        """Undirected degree (number of distinct neighbours)."""
        return len(self.adj.get(node_id, {}))

    def num_edges(self) -> int:
        """Number of distinct undirected edges (O(1), cached)."""
        return self._edge_count

    def record(self, node_id: int) -> NodeRecord:
        return self.records[node_id]

    def birth_time(self, node_id: int) -> float:
        return self.records[node_id].birth_time

    def out_slots_of(self, node_id: int) -> list[int | None]:
        # A copy, matching the array backend: the interface is read-only.
        return list(self.records[node_id].out_slots)

    def in_slot_count(self, node_id: int) -> int:
        return len(self.in_refs[node_id])

    def has_edge(self, u: int, v: int) -> bool:
        return v in self.adj.get(u, {})

    def random_neighbor(
        self, node_id: int, rng: np.random.Generator
    ) -> int | None:
        """Uniformly random current neighbour, or None if isolated.

        Preserves the adjacency-row insertion order when listing
        candidates, so seeded trajectories match the pre-backend code.
        """
        neighbors = self.adj.get(node_id)
        if not neighbors:
            return None
        keys = list(neighbors)
        return keys[int(rng.integers(0, len(keys)))]

    def degree_vector(self) -> np.ndarray:
        return np.array(
            [len(self.adj[u]) for u in self.alive_ids()], dtype=np.int64
        )

    # ------------------------------------------------------------------
    # topology mutation (used by edge policies and network drivers)
    # ------------------------------------------------------------------

    def add_node(self, node_id: int, birth_time: float, num_slots: int) -> NodeRecord:
        """Register a newborn with *num_slots* empty out-slots."""
        if node_id in self.records:
            raise SimulationError(f"node id {node_id} already exists")
        record = NodeRecord(
            node_id=node_id,
            birth_time=birth_time,
            out_slots=[None] * num_slots,
        )
        self.records[node_id] = record
        self.alive.add(node_id)
        self.in_refs[node_id] = set()
        self.adj[node_id] = {}
        self._note_mutation((node_id,))
        return record

    def assign_slot(self, source: int, slot_index: int, target: int) -> None:
        """Point ``source``'s slot *slot_index* at *target* (must be empty)."""
        record = self.records[source]
        if record.out_slots[slot_index] is not None:
            raise SimulationError(
                f"slot {slot_index} of node {source} is already assigned"
            )
        if target == source:
            raise SimulationError(f"self-loop requested by node {source}")
        if target not in self.alive:
            raise SimulationError(f"slot target {target} is not alive")
        record.out_slots[slot_index] = target
        self.in_refs[target].add((source, slot_index))
        self._adj_increment(source, target)
        self._note_mutation((source, target))

    def clear_slot(self, source: int, slot_index: int) -> int | None:
        """Empty ``source``'s slot *slot_index*; returns the old target."""
        record = self.records[source]
        target = record.out_slots[slot_index]
        if target is None:
            return None
        record.out_slots[slot_index] = None
        refs = self.in_refs.get(target)
        if refs is not None:
            refs.discard((source, slot_index))
        self._adj_decrement(source, target)
        self._note_mutation((source, target))
        return target

    def remove_node(self, node_id: int, death_time: float) -> list[tuple[int, int]]:
        """Kill *node_id*: drop all incident edges.

        Returns the list of *orphaned slots* — ``(source, slot_index)``
        pairs of other alive nodes whose request pointed at the dead node.
        The caller's edge policy decides what happens to them (clear vs
        regenerate).  The dead node's own out-slots are cleared here.
        """
        if node_id not in self.alive:
            raise SimulationError(f"cannot remove node {node_id}: not alive")
        record = self.records[node_id]
        record.death_time = death_time
        self.alive.discard(node_id)
        touched = [node_id]

        # Drop the dying node's own requests.
        for slot_index, target in enumerate(record.out_slots):
            if target is not None:
                record.out_slots[slot_index] = None
                refs = self.in_refs.get(target)
                if refs is not None:
                    refs.discard((node_id, slot_index))
                self._adj_decrement(node_id, target)
                touched.append(target)

        # Orphan the requests of others pointing here; clear them from the
        # topology — the policy may immediately re-assign them.
        orphaned = sorted(self.in_refs.pop(node_id, set()))
        for source, slot_index in orphaned:
            self.records[source].out_slots[slot_index] = None
            self._adj_decrement(source, node_id)
            touched.append(source)

        leftovers = self.adj.pop(node_id, {})
        if leftovers:
            raise SimulationError(
                f"node {node_id} died with dangling adjacency: {leftovers}"
            )
        self._note_mutation(touched)
        return orphaned

    # ------------------------------------------------------------------
    # fused streaming rounds (reference implementation)
    # ------------------------------------------------------------------

    supports_round_batch = True

    def apply_round_batch(
        self,
        base: int,
        rounds: int,
        num_slots: int,
        start_time: float,
        plan,
        regenerate: bool,
    ) -> None:
        """Reference fused kernel: per-round graph mutations, plan draws.

        Deliberately built from the ordinary mutation primitives
        (:meth:`remove_node` / :meth:`add_node` / :meth:`assign_slot`) so
        it shares *no* mechanics with the array kernel beyond the
        :class:`~repro.core.round_batch.WindowDrawPlan` — the cross-backend
        bit-identity tests are a real two-implementation cross-check.
        """
        n = plan.n
        if self.num_alive() != n:
            raise SimulationError(
                f"fused window needs exactly {n} alive nodes, "
                f"found {self.num_alive()}"
            )
        for node_id in range(base, base + n):
            if node_id not in self.alive:
                raise SimulationError(
                    f"fused window needs the contiguous alive range "
                    f"[{base}, {base + n}); {node_id} is missing"
                )
        # Regeneration-free windows take every birth draw upfront (same
        # generator consumption as per-round takes — see round_batch.py).
        offsets = None if regenerate else plan.take_birth(int(rounds))
        for k in range(1, int(rounds) + 1):
            time = start_time + k
            # Death → regeneration → birth, the model's per-round order
            # (see models/streaming.py).  remove_node returns the orphans
            # in ascending (source, slot) order — the plan's canonical
            # regeneration-draw order.
            orphaned = self.remove_node(base + k - 1, death_time=time)
            lo = base + k  # oldest post-death survivor
            if regenerate and orphaned:
                draws = plan.take_regen(len(orphaned))
                for (source, slot_index), v in zip(orphaned, draws.tolist()):
                    rel = source - lo
                    target = lo + v + (1 if v >= rel else 0)
                    self.assign_slot(source, slot_index, target)
            birth_row = (
                offsets[k - 1] if offsets is not None else plan.take_birth(1)[0]
            )
            birth_id = base + n + k - 1
            self.add_node(birth_id, birth_time=time, num_slots=num_slots)
            for slot_index, v in enumerate(birth_row.tolist()):
                self.assign_slot(birth_id, slot_index, lo + v)
        # Canonical post-window alive order (ascending ids), matching the
        # array kernel's write-back so later per-event draws agree too.
        from repro.util.sampling import IndexedSet

        self.alive = IndexedSet.from_unique_list(
            list(range(base + rounds, base + rounds + n))
        )

    # ------------------------------------------------------------------
    # state serialization (service plane)
    # ------------------------------------------------------------------

    def dump_state(self) -> dict:
        """Serialize the full mutable state to a JSON-able dict.

        Adjacency is emitted as ordered pair-lists — both the row order
        and the within-row neighbour order are RNG-visible (they feed
        :meth:`random_neighbor` draws in the gossip/lossy protocols), so
        plain JSON objects (which would also stringify the int keys)
        cannot carry them faithfully.  Dead-node records are dropped:
        nothing on a seeded trajectory reads them after the fact.
        """
        nodes = [
            [
                int(u),
                float(self.records[u].birth_time),
                [None if t is None else int(t) for t in self.records[u].out_slots],
            ]
            for u in self.adj
        ]
        adjacency = [
            [int(u), [[int(v), int(m)] for v, m in row.items()]]
            for u, row in self.adj.items()
        ]
        return {
            "kind": "dict",
            "next_id": self._next_id,
            "mutation_epoch": self._mutation_epoch,
            "alive": [int(u) for u in self.alive],
            "nodes": nodes,
            "adjacency": adjacency,
        }

    def restore_state(self, payload: dict) -> None:
        """Restore state previously produced by :meth:`dump_state`."""
        from repro.util.sampling import IndexedSet

        self.records = {}
        self.in_refs = {}
        self.adj = {}
        for u, birth_time, out_slots in payload["nodes"]:
            self.records[u] = NodeRecord(
                node_id=u,
                birth_time=birth_time,
                out_slots=list(out_slots),
            )
            self.in_refs[u] = set()
        for u, row in payload["adjacency"]:
            self.adj[u] = {v: m for v, m in row}
        for u in self.adj:
            for slot_index, target in enumerate(self.records[u].out_slots):
                if target is not None:
                    self.in_refs[target].add((u, slot_index))
        self._edge_count = sum(len(row) for row in self.adj.values()) // 2
        self.alive = IndexedSet(payload["alive"])
        self._next_id = int(payload["next_id"])
        self._mutation_epoch = int(payload["mutation_epoch"])
        self._touched = None

    # ------------------------------------------------------------------
    # snapshot / verification
    # ------------------------------------------------------------------

    def snapshot(self, time: float) -> Snapshot:
        """Freeze the current topology into an immutable :class:`Snapshot`."""
        nodes = self.alive.as_list()
        adjacency = {u: frozenset(self.adj[u].keys()) for u in nodes}
        birth_times = {u: self.records[u].birth_time for u in nodes}
        out_slots = {u: tuple(self.records[u].out_slots) for u in nodes}
        return Snapshot(
            time=time,
            nodes=frozenset(nodes),
            adjacency=adjacency,
            birth_times=birth_times,
            out_slots=out_slots,
        )

    def check_invariants(self) -> None:
        """Raise :class:`SimulationError` if internal indices disagree.

        Checked invariants:
          * adjacency is symmetric with matching multiplicities;
          * every assigned slot points at an alive node and is registered
            in the target's ``in_refs``;
          * every ``in_refs`` entry corresponds to a real slot assignment;
          * adjacency multiplicity equals the number of supporting slots;
          * the cached undirected edge count matches a full recount.
        """
        multiplicity: dict[tuple[int, int], int] = {}
        for node_id in self.alive:
            record = self.records[node_id]
            for slot_index, target in enumerate(record.out_slots):
                if target is None:
                    continue
                if target not in self.alive:
                    raise SimulationError(
                        f"slot ({node_id},{slot_index}) points at dead node {target}"
                    )
                if (node_id, slot_index) not in self.in_refs[target]:
                    raise SimulationError(
                        f"slot ({node_id},{slot_index})->{target} missing from in_refs"
                    )
                key = (min(node_id, target), max(node_id, target))
                multiplicity[key] = multiplicity.get(key, 0) + 1
        for target, refs in self.in_refs.items():
            for source, slot_index in refs:
                if self.records[source].out_slots[slot_index] != target:
                    raise SimulationError(
                        f"stale in_ref ({source},{slot_index}) -> {target}"
                    )
        seen: dict[tuple[int, int], int] = {}
        for u, nbrs in self.adj.items():
            for v, count in nbrs.items():
                if self.adj.get(v, {}).get(u) != count:
                    raise SimulationError(f"asymmetric adjacency {u}-{v}")
                seen[(min(u, v), max(u, v))] = count
        if seen != multiplicity:
            raise SimulationError(
                "adjacency multiplicities disagree with slot assignments"
            )
        recount = sum(len(nbrs) for nbrs in self.adj.values()) // 2
        if recount != self._edge_count:
            raise SimulationError(
                f"cached edge count {self._edge_count} != recount {recount}"
            )

    # ------------------------------------------------------------------
    # internal adjacency maintenance
    # ------------------------------------------------------------------

    def _adj_increment(self, u: int, v: int) -> None:
        if v not in self.adj[u]:
            self._edge_count += 1
        self.adj[u][v] = self.adj[u].get(v, 0) + 1
        self.adj[v][u] = self.adj[v].get(u, 0) + 1

    def _adj_decrement(self, u: int, v: int) -> None:
        for a, b in ((u, v), (v, u)):
            row = self.adj.get(a)
            if row is None or b not in row:
                raise SimulationError(f"decrementing missing edge {a}-{b}")
            row[b] -= 1
            if row[b] == 0:
                del row[b]
                if a == u:
                    self._edge_count -= 1


#: Backward-compatible name for the reference backend.
DynamicGraphState = DictBackend
