"""Adversarial victim selection — an extension beyond the paper.

The paper's churn is *oblivious*: the streaming model kills the oldest
node, the Poisson model a uniformly random one; neither looks at the
topology.  Related work ([2, 4] in the paper) studies adversaries that
pick victims after inspecting the graph.  This module provides victim
strategies so experiments can measure how much of the paper's robustness
survives a topology-aware adversary with the same churn *rate* (one death
per round):

* ``oldest`` — the paper's streaming rule (baseline);
* ``random`` — the paper's Poisson-style rule at streaming cadence;
* ``max_degree`` — hub removal (targets the best-connected node);
* ``min_degree`` — fringe removal (targets the worst-connected node).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.backend import GraphBackend
from repro.errors import ConfigurationError

#: A victim strategy maps (state, rng) -> node id to kill.
VictimStrategy = Callable[[GraphBackend, np.random.Generator], int]


def oldest_victim(state: GraphBackend, rng: np.random.Generator) -> int:
    """The paper's streaming rule: smallest id = earliest birth."""
    del rng
    return min(state.alive_ids())


def random_victim(state: GraphBackend, rng: np.random.Generator) -> int:
    """Uniformly random victim (the Poisson model's rule)."""
    return state.sample_alive(rng)


def max_degree_victim(state: GraphBackend, rng: np.random.Generator) -> int:
    """Hub removal: kill a maximum-degree node (ties broken by age)."""
    del rng
    return max(state.alive_ids(), key=lambda u: (state.degree(u), -u))


def min_degree_victim(state: GraphBackend, rng: np.random.Generator) -> int:
    """Fringe removal: kill a minimum-degree node (ties broken by age)."""
    del rng
    return min(state.alive_ids(), key=lambda u: (state.degree(u), u))


STRATEGIES: dict[str, VictimStrategy] = {
    "oldest": oldest_victim,
    "random": random_victim,
    "max_degree": max_degree_victim,
    "min_degree": min_degree_victim,
}


def get_strategy(name: str) -> VictimStrategy:
    """Look up a named strategy (raises ConfigurationError if unknown)."""
    try:
        return STRATEGIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown victim strategy {name!r}; choose from {sorted(STRATEGIES)}"
        ) from None


__all__ = [
    "STRATEGIES",
    "VictimStrategy",
    "get_strategy",
    "max_degree_victim",
    "min_degree_victim",
    "oldest_victim",
    "random_victim",
]
