"""Poisson node churn (Definitions 4.1 and 4.5).

Births follow a Poisson process of rate ``λ``; each node's lifetime is an
independent Exp(``µ``).  Rather than keeping one timer per node, we simulate
the equivalent *jump chain* of Lemma 4.6: with ``N`` alive nodes,

* the waiting time to the next event is Exp(``λ + Nµ``);
* the event is a birth with probability ``λ / (λ + Nµ)``;
* otherwise it is the death of a uniformly random alive node
  (each fixed node dies with probability ``µ / (λ + Nµ)``).

With ``λ = 1`` and ``µ = 1/n`` (the paper's convention) the stationary
expected size is ``n``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class JumpEvent:
    """One transition of the churn jump chain."""

    dt: float
    is_birth: bool


class PoissonJumpChain:
    """The birth/death jump chain of the Poisson churn."""

    def __init__(self, lam: float = 1.0, mu: float | None = None, n: float | None = None):
        """Create the chain with rates ``λ = lam`` and ``µ = mu``.

        Exactly one of *mu* and *n* must be given; ``n`` is the paper's
        shorthand for ``λ/µ`` (the expected stationary network size), so
        passing ``n`` sets ``µ = λ/n``.
        """
        if (mu is None) == (n is None):
            raise ConfigurationError("specify exactly one of mu= or n=")
        if n is not None:
            if n <= 0:
                raise ConfigurationError(f"n must be positive, got {n}")
            mu = lam / n
        assert mu is not None
        if lam <= 0 or mu <= 0:
            raise ConfigurationError(f"rates must be positive: lam={lam}, mu={mu}")
        self.lam = float(lam)
        self.mu = float(mu)

    @property
    def expected_size(self) -> float:
        """The stationary expected network size ``λ/µ`` (the paper's n)."""
        return self.lam / self.mu

    def total_rate(self, num_alive: int) -> float:
        """Total event rate with *num_alive* nodes in the network."""
        return self.lam + num_alive * self.mu

    def birth_probability(self, num_alive: int) -> float:
        """P(next event is a birth | N alive) — Lemma 4.6."""
        return self.lam / self.total_rate(num_alive)

    def death_probability(self, num_alive: int) -> float:
        """P(next event is a death | N alive) — Lemma 4.6."""
        return (num_alive * self.mu) / self.total_rate(num_alive)

    def fixed_node_death_probability(self, num_alive: int) -> float:
        """P(next event is the death of one fixed node | N alive) — Lemma 4.6."""
        if num_alive == 0:
            return 0.0
        return self.mu / self.total_rate(num_alive)

    def next_event(self, num_alive: int, rng: np.random.Generator) -> JumpEvent:
        """Sample the next jump given *num_alive* nodes."""
        if num_alive < 0:
            raise ValueError(f"num_alive must be >= 0, got {num_alive}")
        rate = self.total_rate(num_alive)
        dt = float(rng.exponential(1.0 / rate))
        is_birth = bool(rng.random() < self.lam / rate)
        return JumpEvent(dt=dt, is_birth=is_birth)

    def sample_lifetime(self, rng: np.random.Generator) -> float:
        """Sample one node lifetime Exp(µ) (used by tests and baselines)."""
        return float(rng.exponential(1.0 / self.mu))
