"""Streaming node churn (Definition 3.2).

The streaming model is deterministic: at each round ``t ≥ 1`` exactly one
node is born, and every node lives exactly ``n`` rounds, so for ``t > n``
the node born at round ``t − n`` dies at round ``t``.  After the first ``n``
rounds the network always has exactly ``n`` nodes, one of each age
``0 .. n−1`` (measuring age in completed rounds since birth).

This module only encodes the schedule; the topology consequences live in
:class:`repro.models.streaming.StreamingNetwork`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class StreamingSchedule:
    """The deterministic birth/death calendar of the streaming churn.

    Node ids equal birth order: the node born at round ``t`` has id
    ``t − 1`` (ids are 0-based, rounds are 1-based as in the paper).
    """

    n: int

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ConfigurationError(f"network size n must be >= 1, got {self.n}")

    def birth_id(self, round_number: int) -> int:
        """Id of the node born at *round_number* (1-based round)."""
        if round_number < 1:
            raise ValueError(f"rounds are 1-based, got {round_number}")
        return round_number - 1

    def death_id(self, round_number: int) -> int | None:
        """Id of the node dying at *round_number*, or None during warm-up.

        The node born at round ``t`` lives through rounds ``t .. t+n−1``
        and dies at round ``t + n``; equivalently, at round ``r > n`` the
        node with id ``r − n − 1`` dies.
        """
        if round_number <= self.n:
            return None
        return round_number - self.n - 1

    def birth_round(self, node_id: int) -> int:
        """Round at which node *node_id* was born."""
        return node_id + 1

    def death_round(self, node_id: int) -> int:
        """Round at which node *node_id* dies (first round it is absent)."""
        return node_id + 1 + self.n

    def age_at(self, node_id: int, round_number: int) -> int:
        """Age (completed rounds since birth) of *node_id* at *round_number*."""
        return round_number - self.birth_round(node_id)

    def alive_at(self, node_id: int, round_number: int) -> bool:
        """Whether *node_id* is alive during *round_number*."""
        return self.birth_round(node_id) <= round_number < self.death_round(node_id)

    def expected_size(self, round_number: int) -> int:
        """Network size after the round-*round_number* churn is applied."""
        return min(round_number, self.n)
