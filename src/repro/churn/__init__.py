"""Node-churn processes: streaming (Def. 3.2), Poisson (Defs. 4.1/4.5),
adversarial victim strategies, and generalized lifetime distributions."""

from repro.churn.adversarial import STRATEGIES, get_strategy
from repro.churn.lifetime import (
    ExponentialLifetime,
    FixedLifetime,
    LifetimeDistribution,
    ParetoLifetime,
    WeibullLifetime,
)
from repro.churn.poisson import PoissonJumpChain
from repro.churn.streaming import StreamingSchedule

__all__ = [
    "STRATEGIES",
    "ExponentialLifetime",
    "FixedLifetime",
    "LifetimeDistribution",
    "ParetoLifetime",
    "PoissonJumpChain",
    "StreamingSchedule",
    "WeibullLifetime",
    "get_strategy",
]
