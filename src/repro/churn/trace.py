"""Recorded churn traces: validated join/leave logs for replay.

A trace is an ordered log of churn events, one JSON object per line:

    {"t": 3.25, "op": "join", "id": 17}
    {"t": 4.0, "op": "leave", "id": 4}

Times are non-decreasing, ids are non-negative integers, and the log must
be *consistent*: a node joins at most while absent and leaves at most
while present.  :class:`ChurnTrace` validates on construction, so a
malformed log fails at load time rather than mid-replay.

Traces model real user populations (in the spirit of the evolving-graph
adversary of Clementi et al., arXiv:1111.0583): record one with the
``record_trace`` observer (:mod:`repro.service.recorder`) or write the
JSONL by hand, then replay it with ``churn="trace"`` composed with any
edge policy and spreading protocol.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Mapping

from repro.errors import ConfigurationError

#: The two churn operations a trace may contain.
TRACE_OPS = ("join", "leave")


@dataclass(frozen=True)
class TraceEvent:
    """One churn event: node *node_id* joins or leaves at time *time*."""

    time: float
    op: str
    node_id: int


class ChurnTrace:
    """An immutable, validated sequence of :class:`TraceEvent`."""

    def __init__(self, events: Iterable[TraceEvent]) -> None:
        self.events: tuple[TraceEvent, ...] = tuple(events)
        self._validate()

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ChurnTrace):
            return NotImplemented
        return self.events == other.events

    @property
    def max_id(self) -> int:
        """Largest node id in the trace (-1 when empty)."""
        return max((e.node_id for e in self.events), default=-1)

    @property
    def end_time(self) -> float:
        """Timestamp of the last event (0.0 when empty)."""
        return self.events[-1].time if self.events else 0.0

    def _validate(self) -> None:
        alive: set[int] = set()
        last_time = float("-inf")
        for position, event in enumerate(self.events):
            if event.op not in TRACE_OPS:
                raise ConfigurationError(
                    f"trace event {position}: unknown op {event.op!r} "
                    f"(expected one of {TRACE_OPS})"
                )
            if not isinstance(event.node_id, int) or event.node_id < 0:
                raise ConfigurationError(
                    f"trace event {position}: id must be a non-negative "
                    f"integer, got {event.node_id!r}"
                )
            if event.time < last_time:
                raise ConfigurationError(
                    f"trace event {position}: time {event.time} goes "
                    f"backwards (previous event at {last_time})"
                )
            last_time = event.time
            if event.op == "join":
                if event.node_id in alive:
                    raise ConfigurationError(
                        f"trace event {position}: node {event.node_id} "
                        "joins while already present"
                    )
                alive.add(event.node_id)
            else:
                if event.node_id not in alive:
                    raise ConfigurationError(
                        f"trace event {position}: node {event.node_id} "
                        "leaves while absent"
                    )
                alive.discard(event.node_id)

    # ------------------------------------------------------------------
    # construction / serialization
    # ------------------------------------------------------------------

    @classmethod
    def from_dicts(cls, records: Iterable[Mapping]) -> "ChurnTrace":
        """Build a trace from ``{"t", "op", "id"}`` mappings."""
        events = []
        for position, record in enumerate(records):
            if not isinstance(record, Mapping):
                raise ConfigurationError(
                    f"trace record {position} is not a mapping: {record!r}"
                )
            extra = set(record) - {"t", "op", "id"}
            missing = {"t", "op", "id"} - set(record)
            if extra or missing:
                raise ConfigurationError(
                    f"trace record {position} must have exactly the keys "
                    f"t/op/id (missing {sorted(missing)}, "
                    f"unexpected {sorted(extra)})"
                )
            node_id = record["id"]
            if isinstance(node_id, bool) or not isinstance(node_id, int):
                raise ConfigurationError(
                    f"trace record {position}: id must be an integer, "
                    f"got {node_id!r}"
                )
            events.append(
                TraceEvent(
                    time=float(record["t"]),
                    op=str(record["op"]),
                    node_id=node_id,
                )
            )
        return cls(events)

    @classmethod
    def from_jsonl(cls, text: str) -> "ChurnTrace":
        """Parse a JSONL trace (blank lines are skipped)."""
        records = []
        for line_number, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as error:
                raise ConfigurationError(
                    f"trace line {line_number} is not valid JSON: {error}"
                ) from error
        return cls.from_dicts(records)

    @classmethod
    def load(cls, path: str | Path) -> "ChurnTrace":
        """Load a JSONL trace file."""
        try:
            text = Path(path).read_text(encoding="utf-8")
        except OSError as error:
            raise ConfigurationError(
                f"cannot read trace file {path}: {error}"
            ) from error
        return cls.from_jsonl(text)

    def to_dicts(self) -> list[dict]:
        """The trace as ``{"t", "op", "id"}`` dicts (JSON-able)."""
        return [
            {"t": e.time, "op": e.op, "id": e.node_id} for e in self.events
        ]

    def to_jsonl(self) -> str:
        """The trace as JSONL text (one event per line)."""
        return "".join(
            json.dumps(record) + "\n" for record in self.to_dicts()
        )

    def save(self, path: str | Path) -> Path:
        """Write the trace as a JSONL file; returns the path."""
        target = Path(path)
        target.write_text(self.to_jsonl(), encoding="utf-8")
        return target
