"""Node-lifetime distributions beyond the exponential.

The paper's Poisson model gives every node an Exp(µ) lifetime and argues
(§1, §5) that its results should be robust to modelling choices.
Measurement studies of real P2P session lengths, however, consistently
find *heavy tails* (many short-lived nodes, a few very long-lived ones).
These samplers — all normalised to a chosen mean so the churn *rate* is
held fixed — power the generalized model of :mod:`repro.models.general`
and EXP-17's robustness test:

* :class:`ExponentialLifetime` — the paper's memoryless baseline;
* :class:`WeibullLifetime` — shape < 1 gives a heavy (stretched-
  exponential) tail with many infant deaths;
* :class:`ParetoLifetime` — power-law tail (Lomax/Pareto-II so lifetimes
  can be arbitrarily small), the classic P2P session model;
* :class:`FixedLifetime` — deterministic lifetimes, the continuous-time
  analogue of the streaming model.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np

from repro.errors import ConfigurationError


class LifetimeDistribution(ABC):
    """A positive random lifetime with a known mean."""

    @property
    @abstractmethod
    def mean(self) -> float:
        """Expected lifetime."""

    @abstractmethod
    def sample(self, rng: np.random.Generator) -> float:
        """Draw one lifetime."""

    def sample_many(self, rng: np.random.Generator, count: int) -> list[float]:
        return [self.sample(rng) for _ in range(count)]


class ExponentialLifetime(LifetimeDistribution):
    """Exp(1/mean) — the paper's Definition 4.1."""

    def __init__(self, mean: float) -> None:
        if mean <= 0:
            raise ConfigurationError(f"mean must be positive, got {mean}")
        self._mean = float(mean)

    @property
    def mean(self) -> float:
        return self._mean

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self._mean))

    def __repr__(self) -> str:
        return f"ExponentialLifetime(mean={self._mean:g})"


class WeibullLifetime(LifetimeDistribution):
    """Weibull with the given *shape*, scaled to the given mean.

    Shape k < 1 is heavy-tailed (decreasing hazard: survivors keep
    surviving), k = 1 reduces to the exponential, k > 1 is light-tailed
    (ageing).  The scale is ``mean / Γ(1 + 1/k)``.
    """

    def __init__(self, mean: float, shape: float) -> None:
        if mean <= 0 or shape <= 0:
            raise ConfigurationError("mean and shape must be positive")
        self._mean = float(mean)
        self.shape = float(shape)
        self.scale = self._mean / math.gamma(1.0 + 1.0 / self.shape)

    @property
    def mean(self) -> float:
        return self._mean

    def sample(self, rng: np.random.Generator) -> float:
        return float(self.scale * rng.weibull(self.shape))

    def __repr__(self) -> str:
        return f"WeibullLifetime(mean={self._mean:g}, shape={self.shape:g})"


class ParetoLifetime(LifetimeDistribution):
    """Lomax (Pareto type II) with tail index *alpha*, scaled to the mean.

    Density ∝ (1 + x/λ)^{−α−1} on x ≥ 0; mean = λ/(α−1) requires α > 1.
    Small α (close to 1) gives an extremely heavy tail: a few nodes live
    for enormous times while the median lifetime is far below the mean.
    """

    def __init__(self, mean: float, alpha: float) -> None:
        if mean <= 0:
            raise ConfigurationError(f"mean must be positive, got {mean}")
        if alpha <= 1.0:
            raise ConfigurationError("alpha must exceed 1 for a finite mean")
        self._mean = float(mean)
        self.alpha = float(alpha)
        self.lam = self._mean * (self.alpha - 1.0)

    @property
    def mean(self) -> float:
        return self._mean

    def sample(self, rng: np.random.Generator) -> float:
        # Inverse CDF: X = λ ((1-U)^{-1/α} − 1).
        u = float(rng.random())
        return self.lam * ((1.0 - u) ** (-1.0 / self.alpha) - 1.0)

    def median(self) -> float:
        """Closed-form median (far below the mean for small alpha)."""
        return self.lam * (2.0 ** (1.0 / self.alpha) - 1.0)

    def __repr__(self) -> str:
        return f"ParetoLifetime(mean={self._mean:g}, alpha={self.alpha:g})"


class FixedLifetime(LifetimeDistribution):
    """Deterministic lifetime — the streaming model's continuous cousin."""

    def __init__(self, mean: float) -> None:
        if mean <= 0:
            raise ConfigurationError(f"mean must be positive, got {mean}")
        self._mean = float(mean)

    @property
    def mean(self) -> float:
        return self._mean

    def sample(self, rng: np.random.Generator) -> float:
        del rng
        return self._mean

    def __repr__(self) -> str:
        return f"FixedLifetime(mean={self._mean:g})"
