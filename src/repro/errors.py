"""Exception hierarchy for the :mod:`repro` library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors (``TypeError`` etc.).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A model, process, or experiment received invalid parameters."""


class SimulationError(ReproError):
    """The simulation reached an inconsistent internal state.

    This indicates a bug in the library (an invariant was violated), not a
    user mistake; it is raised by internal sanity checks.
    """


class AnalysisError(ReproError):
    """An analysis routine was asked for something it cannot compute.

    For example: exact vertex expansion on a graph too large to enumerate,
    or a spectral gap on an empty graph.
    """


class ExperimentError(ReproError):
    """An experiment id is unknown or an experiment was misconfigured."""


class CheckpointError(ReproError):
    """A checkpoint could not be written, read, or restored.

    Raised for corrupted or truncated checkpoint files (the content hash
    is verified on load), unsupported format versions, and attempts to
    checkpoint drivers or observers whose state the service plane cannot
    serialize.
    """


class SweepError(ReproError):
    """A sweep could not run, or one of its cells failed.

    When a cell's measurement raises, the runner isolates the failure
    (other cells complete) and re-raises through this type — carrying
    the failing cell's index, scenario and traceback — the moment the
    caller asks for the sweep's values.
    """
