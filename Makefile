# Development targets. The tier-1 gate is `make test`; `make test-backends`
# runs the same suite once per topology backend (REPRO_BACKEND is consumed
# by tests/conftest.py and repro.core.backend.create_backend).

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

# bench_*.py files do not match pytest's default test-file pattern, so the
# benchmark targets enumerate them explicitly.
BENCH_FILES := $(wildcard benchmarks/bench_*.py)

.PHONY: test test-dict test-array test-backends bench bench-backend \
	bench-bounded bench-analysis bench-sweep bench-fleet bench-service \
	bench-churn bench-check experiments scenario-smoke sweep-smoke \
	fleet-smoke service-smoke

test:
	$(PYTHON) -m pytest -x -q

test-dict:
	REPRO_BACKEND=dict $(PYTHON) -m pytest -x -q

test-array:
	REPRO_BACKEND=array $(PYTHON) -m pytest -x -q

test-backends: test-dict test-array

bench:
	$(PYTHON) -m pytest $(BENCH_FILES) -q -m "not slow"

# Full dict-vs-array sweep (n up to 1e5); writes BENCH_backend.json.
bench-backend:
	$(PYTHON) benchmarks/bench_backend_scaling.py

# Per-slot vs bulk bounded-degree placement sweep; writes BENCH_bounded.json.
bench-bounded:
	$(PYTHON) benchmarks/bench_bounded_degree.py

# Dict snapshot plane vs CSR view plane sweep; writes BENCH_analysis.json.
bench-analysis:
	$(PYTHON) benchmarks/bench_analysis.py

# Sequential vs 4-worker vs warm-resume replica sweep; writes BENCH_sweep.json.
bench-sweep:
	$(PYTHON) benchmarks/bench_sweep.py

# One worker vs two shared-store fleet workers (claim protocol + reduce);
# merges its row into BENCH_sweep.json at a distinct n.
bench-fleet:
	$(PYTHON) benchmarks/bench_fleet.py

# Checkpoint cadence overhead + restore vs cold rebuild at n=1e5;
# writes BENCH_service.json.
bench-service:
	$(PYTHON) benchmarks/bench_service.py

# Fused window rounds vs per-event stepping at n=1e5 (asserts the 5x
# floor) plus an n=1e6 fused smoke row; writes BENCH_churn.json.
bench-churn:
	$(PYTHON) benchmarks/bench_churn.py

# Fresh sweeps compared against the committed BENCH_*.json baselines.
bench-check:
	$(PYTHON) benchmarks/bench_backend_scaling.py --output /tmp/bench_current.json
	$(PYTHON) benchmarks/bench_bounded_degree.py --output /tmp/bench_bounded_current.json
	$(PYTHON) benchmarks/bench_analysis.py --output /tmp/bench_analysis_current.json
	$(PYTHON) benchmarks/bench_sweep.py --output /tmp/bench_sweep_current.json
	$(PYTHON) benchmarks/bench_fleet.py --output /tmp/bench_sweep_current.json
	$(PYTHON) benchmarks/bench_service.py --output /tmp/bench_service_current.json
	$(PYTHON) benchmarks/bench_churn.py --output /tmp/bench_churn_current.json
	$(PYTHON) benchmarks/check_bench_regression.py --current /tmp/bench_current.json \
		--current-bounded /tmp/bench_bounded_current.json \
		--current-analysis /tmp/bench_analysis_current.json \
		--current-sweep /tmp/bench_sweep_current.json \
		--current-service /tmp/bench_service_current.json \
		--current-churn /tmp/bench_churn_current.json

# Every registered protocol x both backends through the scenario layer.
scenario-smoke:
	$(PYTHON) -m pytest tests/test_scenario_smoke.py -q
	$(PYTHON) -m repro.experiments --scenario examples/adversarial_gossip.json

# Sweep plane: grid/runner/store tests, the threshold-churn scenario,
# and a CLI round trip (cold parallel run, then a fully-cached resume).
sweep-smoke:
	$(PYTHON) -m pytest tests/test_sweep_spec.py tests/test_sweep_runner.py \
		tests/test_models_threshold.py -q
	$(PYTHON) -m repro.experiments --scenario examples/threshold_streaming.json
	rm -rf /tmp/repro-sweep-store
	$(PYTHON) -m repro.experiments EXP-01 --jobs 2 --store /tmp/repro-sweep-store
	$(PYTHON) -m repro.experiments EXP-01 --jobs 2 --store /tmp/repro-sweep-store --resume

# Fleet plane: store/fleet/CLI suites, then a real multi-terminal round
# trip against one shared store — two concurrent workers drain the
# example sweep, the reducer writes the artifact, and a sequential run
# on a second store must produce the identical core digest.
fleet-smoke:
	$(PYTHON) -m pytest tests/test_sweep_store.py tests/test_sweep_fleet.py \
		tests/test_cli_sweep.py -q
	rm -rf /tmp/repro-fleet-store /tmp/repro-fleet-solo
	$(PYTHON) -m repro.experiments sweep worker examples/fleet_sweep.json \
		--store /tmp/repro-fleet-store --wait 30 & \
	$(PYTHON) -m repro.experiments sweep worker examples/fleet_sweep.json \
		--store /tmp/repro-fleet-store --wait 30 & \
	wait
	$(PYTHON) -m repro.experiments sweep reduce examples/fleet_sweep.json \
		--store /tmp/repro-fleet-store --timeout 0 > /tmp/repro-fleet-a.json
	$(PYTHON) -m repro.experiments sweep run examples/fleet_sweep.json \
		--store /tmp/repro-fleet-solo --workers 1 > /tmp/repro-fleet-b.json
	$(PYTHON) -c "import json; \
		a = json.load(open('/tmp/repro-fleet-a.json')); \
		b = json.load(open('/tmp/repro-fleet-b.json')); \
		assert a['digest'] == b['digest'], 'fleet digest != sequential'; \
		print('fleet-smoke: artifact digests identical:', a['digest'])"

# Service plane: checkpoint/trace/metrics suites, a trace-replay
# scenario, and a CLI kill-and-resume round trip (run with checkpoints,
# then restore the latest one and finish the horizon).
service-smoke:
	$(PYTHON) -m pytest tests/test_service_checkpoint.py \
		tests/test_service_trace.py tests/test_service_metrics.py \
		tests/test_examples_roundtrip.py -q
	$(PYTHON) -m repro.experiments --scenario examples/trace_replay.json
	rm -rf /tmp/repro-service-ckpt && mkdir -p /tmp/repro-service-ckpt
	cd /tmp/repro-service-ckpt && PYTHONPATH=$(CURDIR)/src $(PYTHON) \
		-m repro.experiments --scenario $(CURDIR)/examples/service_checkpoint.json
	cd /tmp/repro-service-ckpt && PYTHONPATH=$(CURDIR)/src $(PYTHON) \
		-m repro.experiments --restore /tmp/repro-service-ckpt/checkpoints

experiments:
	$(PYTHON) -m repro.experiments --all
