# Development targets. The tier-1 gate is `make test`; `make test-backends`
# runs the same suite once per topology backend (REPRO_BACKEND is consumed
# by tests/conftest.py and repro.core.backend.create_backend).

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

# bench_*.py files do not match pytest's default test-file pattern, so the
# benchmark targets enumerate them explicitly.
BENCH_FILES := $(wildcard benchmarks/bench_*.py)

.PHONY: test test-dict test-array test-backends bench bench-backend \
	bench-bounded bench-analysis bench-check experiments scenario-smoke

test:
	$(PYTHON) -m pytest -x -q

test-dict:
	REPRO_BACKEND=dict $(PYTHON) -m pytest -x -q

test-array:
	REPRO_BACKEND=array $(PYTHON) -m pytest -x -q

test-backends: test-dict test-array

bench:
	$(PYTHON) -m pytest $(BENCH_FILES) -q -m "not slow"

# Full dict-vs-array sweep (n up to 1e5); writes BENCH_backend.json.
bench-backend:
	$(PYTHON) benchmarks/bench_backend_scaling.py

# Per-slot vs bulk bounded-degree placement sweep; writes BENCH_bounded.json.
bench-bounded:
	$(PYTHON) benchmarks/bench_bounded_degree.py

# Dict snapshot plane vs CSR view plane sweep; writes BENCH_analysis.json.
bench-analysis:
	$(PYTHON) benchmarks/bench_analysis.py

# Fresh sweeps compared against the committed BENCH_*.json baselines.
bench-check:
	$(PYTHON) benchmarks/bench_backend_scaling.py --output /tmp/bench_current.json
	$(PYTHON) benchmarks/bench_bounded_degree.py --output /tmp/bench_bounded_current.json
	$(PYTHON) benchmarks/bench_analysis.py --output /tmp/bench_analysis_current.json
	$(PYTHON) benchmarks/check_bench_regression.py --current /tmp/bench_current.json \
		--current-bounded /tmp/bench_bounded_current.json \
		--current-analysis /tmp/bench_analysis_current.json

# Every registered protocol x both backends through the scenario layer.
scenario-smoke:
	$(PYTHON) -m pytest tests/test_scenario_smoke.py -q
	$(PYTHON) -m repro.experiments --scenario examples/adversarial_gossip.json

experiments:
	$(PYTHON) -m repro.experiments --all
