# Development targets. The tier-1 gate is `make test`; `make test-backends`
# runs the same suite once per topology backend (REPRO_BACKEND is consumed
# by tests/conftest.py and repro.core.backend.create_backend).

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

# bench_*.py files do not match pytest's default test-file pattern, so the
# benchmark targets enumerate them explicitly.
BENCH_FILES := $(wildcard benchmarks/bench_*.py)

.PHONY: test test-dict test-array test-backends bench bench-backend experiments

test:
	$(PYTHON) -m pytest -x -q

test-dict:
	REPRO_BACKEND=dict $(PYTHON) -m pytest -x -q

test-array:
	REPRO_BACKEND=array $(PYTHON) -m pytest -x -q

test-backends: test-dict test-array

bench:
	$(PYTHON) -m pytest $(BENCH_FILES) -q -m "not slow"

# Full dict-vs-array sweep (n up to 1e5); writes BENCH_backend.json.
bench-backend:
	$(PYTHON) benchmarks/bench_backend_scaling.py

experiments:
	$(PYTHON) -m repro.experiments --all
